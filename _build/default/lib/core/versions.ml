(* Snapshot-based page multiversioning (paper §6.1).

   Data elements are pages.  A snapshot is logically a pair
   (timestamp, list of active transactions); here read-only
   transactions register the timestamp they read at, and the version
   manager keeps, for every page, the displaced committed images that
   some registered snapshot still needs.

   Old versions are purged exactly when they belong to no snapshot;
   the check happens when a new version is created (at commit install),
   as in the paper. *)

type saved = { version_ts : int; image : Bytes.t }

type t = {
  versions : (int, saved list) Hashtbl.t; (* pid -> newest first *)
  mutable current_ts : (int, int) Hashtbl.t; (* pid -> commit ts of current image *)
  mutable snapshots : (int * int ref) list; (* (ts, refcount), any order *)
  mutable last_commit_ts : int;
}

let create () =
  {
    versions = Hashtbl.create 256;
    current_ts = Hashtbl.create 256;
    snapshots = [];
    last_commit_ts = 0;
  }

let last_commit_ts t = t.last_commit_ts
let set_last_commit_ts t ts = t.last_commit_ts <- max t.last_commit_ts ts

(* ---- snapshots ---------------------------------------------------- *)

(* A read-only transaction acquires the latest committed timestamp as
   its snapshot.  Snapshots are advanced implicitly: each new reader
   sees the latest commit (the paper advances them periodically; our
   advancement granularity is per-acquire, a valid special case). *)
let acquire_snapshot t =
  let ts = t.last_commit_ts in
  (match List.assoc_opt ts t.snapshots with
   | Some rc -> incr rc
   | None -> t.snapshots <- (ts, ref 1) :: t.snapshots);
  ts

let release_snapshot t ts =
  match List.assoc_opt ts t.snapshots with
  | Some rc ->
    decr rc;
    if !rc <= 0 then begin
      t.snapshots <- List.filter (fun (s, _) -> s <> ts) t.snapshots;
      (* purge versions needed by no remaining snapshot *)
      let needed version_ts until =
        List.exists (fun (s, _) -> version_ts <= s && s < until) t.snapshots
      in
      let prune pid lst =
        (* a saved version v is valid until the ts of the next newer
           kept version, or the current image's ts if none is newer *)
        let rec keep newer_kept = function
          | [] -> List.rev newer_kept
          | v :: older ->
            let until =
              match newer_kept with
              | newer :: _ -> newer.version_ts
              | [] -> (
                match Hashtbl.find_opt t.current_ts pid with
                | Some c -> c
                | None -> max_int)
            in
            if needed v.version_ts until then keep (v :: newer_kept) older
            else keep newer_kept older
        in
        (* input and output are newest-first *)
        keep [] lst |> List.rev
      in
      Hashtbl.iter
        (fun pid lst -> Hashtbl.replace t.versions pid (prune pid lst))
        (Hashtbl.copy t.versions);
      Hashtbl.iter
        (fun pid lst -> if lst = [] then Hashtbl.remove t.versions pid)
        (Hashtbl.copy t.versions)
    end
  | None -> ()

let active_snapshots t = List.map fst t.snapshots

(* ---- version creation at commit ----------------------------------- *)

(* When a transaction commits at [commit_ts], the displaced committed
   image of each page it wrote (captured before its first write) may
   still be needed by an active snapshot: its validity interval is
   [version_ts, commit_ts).  Keep it only in that case — the paper's
   purge-on-creation rule. *)
let install_commit t ~commit_ts pages =
  List.iter
    (fun (pid, before_image) ->
      let version_ts =
        match Hashtbl.find_opt t.current_ts pid with Some c -> c | None -> 0
      in
      let needed =
        List.exists
          (fun (s, _) -> version_ts <= s && s < commit_ts)
          t.snapshots
      in
      if needed then begin
        let existing =
          Option.value (Hashtbl.find_opt t.versions pid) ~default:[]
        in
        Hashtbl.replace t.versions pid
          ({ version_ts; image = before_image } :: existing)
      end;
      Hashtbl.replace t.current_ts pid commit_ts)
    pages;
  t.last_commit_ts <- max t.last_commit_ts commit_ts

(* ---- reads --------------------------------------------------------- *)

(* For a reader at snapshot [ts]: [None] means the current buffer image
   is the right version; [Some img] is an older saved image. *)
let read_for_snapshot t ~snapshot_ts pid =
  let current =
    match Hashtbl.find_opt t.current_ts pid with Some c -> c | None -> 0
  in
  if current <= snapshot_ts then None
  else
    let saved = Option.value (Hashtbl.find_opt t.versions pid) ~default:[] in
    (* newest first; pick the newest with version_ts <= snapshot *)
    let rec pick = function
      | [] -> None
      | v :: rest -> if v.version_ts <= snapshot_ts then Some v.image else pick rest
    in
    pick saved

let version_count t =
  Hashtbl.fold (fun _ l acc -> acc + List.length l) t.versions 0

let clear t =
  Hashtbl.reset t.versions;
  Hashtbl.reset t.current_ts;
  t.snapshots <- []
