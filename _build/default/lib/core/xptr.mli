(** Database pointers: 64-bit addresses in the Sedna Address Space
    (paper §4.2).  The high 32 bits are the layer number, the low 32
    bits the byte address within the layer.  The same representation is
    used in main and in secondary memory — the property that eliminates
    pointer swizzling. *)

type t

val null : t
(** The reserved null pointer (layer 0, offset 0 — the master page is
    never addressed through node pointers). *)

val is_null : t -> bool

val make : layer:int -> addr:int -> t
(** [make ~layer ~addr] — [addr] is the byte address within the layer. *)

val layer : t -> int
val addr : t -> int

val page_id : t -> int
(** Global page index across the whole address space: the key used by
    the buffer table, the page file, the WAL and the version store. *)

val page_offset : t -> int
(** Byte offset within the containing page. *)

val page_start : t -> t
(** Address of the first byte of the containing page. *)

val of_page_id : int -> t

val add : t -> int -> t
(** Byte-offset arithmetic within a layer. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_int64 : t -> int64
(** The on-page representation (little-endian when stored). *)

val of_int64 : int64 -> t

val pp : Format.formatter -> t -> unit
