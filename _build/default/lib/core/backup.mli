(** Hot backup (paper §6.5): full and incremental online backups with
    point-in-time restore.

    A full backup copies data file → log → catalog, in that order,
    while the database serves requests; a page torn by a concurrent
    write ("split-block problem") is healed because restore replays the
    copied WAL.  Incremental backups ship only the log and catalog.

    Increments are valid until the next checkpoint truncates the log;
    take a fresh full backup after checkpointing. *)

val full : Database.t -> dest:string -> unit

val incremental : Database.t -> dest:string -> seq:int -> unit
(** Adds [wal.<seq>.sdb] / [catalog.<seq>.sdb] to an existing full
    backup directory. *)

val restore : src:string -> dest:string -> ?up_to:int -> unit -> Database.t
(** Materialize the backup into a fresh directory and open it (which
    replays the appropriate log).  [up_to] selects how many increments
    to apply — point-in-time recovery at increment granularity. *)

val copy_file : string -> string -> unit
