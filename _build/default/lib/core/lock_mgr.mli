(** Strict two-phase locking at document granularity (paper §6.2).

    Transactions acquire S or X locks on document names and hold them
    until commit/abort; a shared lock can upgrade when its holder is
    alone.  Conflicts surface as {!Blocked} (the request is queued and
    granted FIFO when compatible) or {!Deadlock_detected} via the
    wait-for graph.  Waiting is cooperative: the caller retries. *)

type t
type mode = Shared | Exclusive
type outcome = Granted | Blocked | Deadlock_detected

val create : unit -> t

val acquire : t -> txn:int -> name:string -> mode:mode -> outcome

val release_all : t -> txn:int -> unit
(** Drop every lock and queued request of a transaction (commit/abort),
    promoting newly-compatible waiters in FIFO order. *)

val holds : t -> string -> int -> mode option
(** The mode a transaction currently holds on a document, if any. *)

val holders : t -> string -> (int * mode) list
val waiters : t -> string -> (int * mode) list

val pp_mode : Format.formatter -> mode -> unit
