(** Snapshot-based page multiversioning (paper §6.1).

    Data elements are pages.  Read-only transactions register a
    snapshot timestamp; the version manager keeps, for each page, the
    displaced committed images some registered snapshot still needs.
    Old versions are purged exactly when they belong to no snapshot —
    checked when a new version is created, as in the paper. *)

type t

val create : unit -> t

val last_commit_ts : t -> int
val set_last_commit_ts : t -> int -> unit

val acquire_snapshot : t -> int
(** Register a reader at the latest committed timestamp.  (The paper
    advances snapshots periodically; per-acquire advancement is the
    special case implemented here.) *)

val release_snapshot : t -> int -> unit
(** Drop a reader registration; purges versions no snapshot needs. *)

val active_snapshots : t -> int list

val install_commit : t -> commit_ts:int -> (int * Bytes.t) list -> unit
(** At commit: for each (page id, displaced committed image), keep the
    image iff an active snapshot falls in its validity interval; then
    advance the page's current version timestamp. *)

val read_for_snapshot : t -> snapshot_ts:int -> int -> Bytes.t option
(** [None] = the current buffer image is the right version for this
    reader; [Some img] = an older saved image must be used. *)

val version_count : t -> int
(** Number of saved page versions (tests / benches). *)

val clear : t -> unit
