(* The indirection table (paper §4.1, §4.1.2).

   An indirection cell holds a direct pointer to a node descriptor.
   Cells never move: the cell's address is the node handle — it
   uniquely identifies the node, gives O(1) access, and stays valid
   when the descriptor is physically relocated (block split/merge).
   Parent pointers in descriptors also go through these cells, which is
   what makes relocation touch a constant number of fields.

   Free cells are chained through their own storage with the low bit
   set (descriptor addresses are 8-aligned, so a tagged value is never
   a valid pointer). *)

open Sedna_util

let magic = 0xd1d1
let header_size = 16
let cell_size = 8
let cells_per_page = (Page.page_size - header_size) / cell_size

let cell_addr page i = Xptr.add page (header_size + (i * cell_size))

let tag (p : Xptr.t) = Int64.logor (Xptr.to_int64 p) 1L
let untag (v : int64) = Xptr.of_int64 (Int64.logand v (Int64.lognot 1L))
let is_tagged (v : int64) = Int64.logand v 1L = 1L

(* Allocate a fresh indirection page and thread its cells onto the free
   list. *)
let grow bm (cat : Catalog.t) =
  let page = Buffer_mgr.allocate_page bm in
  Buffer_mgr.write_u16 bm (Xptr.add page 0) magic;
  Buffer_mgr.write_u8 bm (Xptr.add page 2)
    (Page.block_kind_code Page.Indirection_block);
  (* chain cells: cell i -> cell i+1, last -> previous free head *)
  for i = 0 to cells_per_page - 1 do
    let next =
      if i = cells_per_page - 1 then
        if Xptr.is_null cat.Catalog.indir_free_head then 1L
        else tag cat.Catalog.indir_free_head
      else tag (cell_addr page (i + 1))
    in
    Buffer_mgr.write_i64 bm (cell_addr page i) next
  done;
  cat.Catalog.indir_free_head <- cell_addr page 0;
  cat.Catalog.indir_pages <- Xptr.to_int64 page :: cat.Catalog.indir_pages;
  Catalog.mark_dirty cat

let alloc bm (cat : Catalog.t) : Xptr.t =
  if Xptr.is_null cat.Catalog.indir_free_head then grow bm cat;
  let cell = cat.Catalog.indir_free_head in
  let v = Buffer_mgr.read_i64 bm cell in
  if not (is_tagged v) then
    Error.raise_error Error.Storage_corruption
      "indirection free list corrupted at %a" Xptr.pp cell;
  let next = untag v in
  cat.Catalog.indir_free_head <-
    (if Xptr.equal next Xptr.null then Xptr.null else next);
  Catalog.mark_dirty cat;
  Buffer_mgr.write_i64 bm cell 0L;
  cell

let free bm (cat : Catalog.t) (cell : Xptr.t) =
  let next =
    if Xptr.is_null cat.Catalog.indir_free_head then 1L
    else tag cat.Catalog.indir_free_head
  in
  Buffer_mgr.write_i64 bm cell next;
  cat.Catalog.indir_free_head <- cell;
  Catalog.mark_dirty cat

(* Dereference a node handle to the current descriptor address. *)
let get bm (cell : Xptr.t) : Xptr.t =
  let v = Buffer_mgr.read_i64 bm cell in
  if is_tagged v then
    Error.raise_error Error.Storage_corruption
      "dangling node handle %a" Xptr.pp cell;
  Xptr.of_int64 v

(* Point the handle at a (possibly new) descriptor address: the single
   write that re-parents every child of a moved node. *)
let set bm (cell : Xptr.t) (desc : Xptr.t) =
  Buffer_mgr.write_i64 bm cell (Xptr.to_int64 desc)
