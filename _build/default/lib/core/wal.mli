(** Write-ahead log (paper §6.4): redo-only page after-images plus
    logical audit records.

    The WAL protocol: a transaction's after-images and its commit
    record are appended and fsynced before commit returns.  Records are
    checksummed; {!read_all} stops at the first torn/corrupt frame, so
    a crash mid-append loses only the unacknowledged tail. *)

type record =
  | Begin of int  (** transaction id *)
  | Image of int * int * Bytes.t  (** txn, page id, after-image *)
  | Commit of int * string option
      (** txn, marshaled catalog when it changed during the txn *)
  | Abort of int
  | Checkpoint
  | Logical of int * string  (** audit record: txn, operation *)

type t

val create : string -> t
(** Create/truncate the log file at this path. *)

val open_existing : string -> t
(** Open for appending (recovery reads via {!read_all}). *)

val append : t -> record -> unit
val sync : t -> unit

val read_all : string -> record list
(** All well-formed records from the start of the file; a torn tail is
    silently dropped. *)

val reset : t -> unit
(** Truncate after a checkpoint made the log redundant. *)

val size : t -> int
val path : t -> string
val close : t -> unit
