(** Page geometry: the Sedna Address Space is divided into layers of
    equal size; a layer consists of equal-size pages (paper §4.2). *)

val page_size : int
(** 4096 bytes. *)

val pages_per_layer : int
val layer_size : int

type block_kind =
  | Node_block
  | Text_block
  | Indirection_block
  | Btree_block
  | Meta_block

val block_kind_code : block_kind -> int
val block_kind_of_code : int -> block_kind option
