(** The indirection table (paper §4.1, §4.1.2).

    A cell holds a direct pointer to a node descriptor and never moves:
    the cell's address is the {e node handle} — unique, O(1) to follow,
    and immutable across descriptor relocation.  Parent pointers in
    descriptors also go through cells, which is what makes relocation a
    constant-field operation. *)

val alloc : Buffer_mgr.t -> Catalog.t -> Xptr.t
(** Claim a cell (growing the table by a page when the free list is
    empty). *)

val free : Buffer_mgr.t -> Catalog.t -> Xptr.t -> unit

val get : Buffer_mgr.t -> Xptr.t -> Xptr.t
(** Dereference a handle to the current descriptor address.  Raises
    [Storage_corruption] on a dangling handle. *)

val set : Buffer_mgr.t -> Xptr.t -> Xptr.t -> unit
(** Point the handle at a (new) descriptor address: the single write
    that re-parents every child of a moved node. *)

val cells_per_page : int
