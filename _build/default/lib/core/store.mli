(** The storage context threaded through node-level operations: the
    buffer manager plus the catalog a computation should see (an
    updater uses the shared catalog; a snapshot reader gets its private
    copy). *)

type t = { bm : Buffer_mgr.t; cat : Catalog.t }

val create : Buffer_mgr.t -> Catalog.t -> t
