(* Structural consistency checker: walks a document and verifies the
   §4.1 invariants the storage design promises.  Used by the test suite
   after every mutating scenario and exposed in the shell as \check.

   Checked invariants:
   - the sibling chain is doubly consistent (left/right mirror);
   - every child's indirect parent pointer dereferences to its parent;
   - labels strictly increase along the sibling chain, and along every
     schema node's block chain (the partial-order invariant);
   - each parent's per-schema child slot aims at its first child of
     that schema (and is null iff there are none);
   - every schema node's node_count matches its stored population;
   - every descriptor's indirection cell points back at it. *)

module F = Format

let check_document (st : Store.t) (doc_name : string) : string list =
  let bm = st.Store.bm in
  let doc = Catalog.get_document st.Store.cat doc_name in
  let dd = Indirection.get bm doc.Catalog.doc_indir in
  let errors = ref [] in
  let err fmt = F.kasprintf (fun s -> errors := s :: !errors) fmt in
  let rec walk d =
    let my_handle = Node.handle st d in
    (* handle round-trip *)
    if not (Xptr.equal (Indirection.get bm my_handle) d) then
      err "handle %a does not dereference to its descriptor" Xptr.pp my_handle;
    let kids =
      let rec from acc = function
        | None -> List.rev acc
        | Some c -> from (c :: acc) (Node.right_sibling st c)
      in
      from [] (Node.first_child_any st d)
    in
    List.iteri
      (fun i c ->
        (match Node.parent st c with
         | Some p when Xptr.equal (Node.handle st p) my_handle -> ()
         | _ -> err "child %d of %a has a wrong parent" i Xptr.pp my_handle);
        let l = Node.left_sibling st c in
        match (i, l) with
        | 0, Some _ -> err "first child of %a has a left sibling" Xptr.pp my_handle
        | 0, None -> ()
        | _, Some l ->
          if not (Xptr.equal (Node_block.right_sibling bm l) c) then
            err "sibling chain broken at child %d of %a" i Xptr.pp my_handle
        | _, None -> err "child %d of %a misses its left sibling" i Xptr.pp my_handle)
      kids;
    let rec order = function
      | a :: (b :: _ as rest) ->
        if Sedna_nid.Nid.compare (Node.label st a) (Node.label st b) >= 0 then
          err "sibling labels out of order under %a" Xptr.pp my_handle;
        order rest
      | _ -> ()
    in
    order kids;
    (* labels of children must sit inside the parent's label range *)
    let parent_label = Node.label st d in
    List.iter
      (fun c ->
        if not (Sedna_nid.Nid.is_ancestor ~ancestor:parent_label (Node.label st c))
        then err "child label escapes its parent range under %a" Xptr.pp my_handle)
      kids;
    let snode = Node.snode st d in
    (match snode.Catalog.kind with
     | Catalog.Element | Catalog.Document ->
       List.iter
         (fun (cs : Catalog.snode) ->
           let actual_first =
             List.find_opt
               (fun c -> (Node.snode st c).Catalog.id = cs.Catalog.id)
               kids
           in
           let stored = Node_block.child bm d cs.Catalog.child_slot in
           match (actual_first, Xptr.is_null stored) with
           | Some f, false ->
             if not (Xptr.equal f stored) then
               err "child slot %d of %a not at the first %s child"
                 cs.Catalog.child_slot Xptr.pp my_handle
                 (Catalog.kind_name cs.Catalog.kind)
           | Some _, true ->
             err "child slot %d of %a is null but children exist"
               cs.Catalog.child_slot Xptr.pp my_handle
           | None, false ->
             err "child slot %d of %a is stale" cs.Catalog.child_slot Xptr.pp
               my_handle
           | None, true -> ())
         snode.Catalog.children
     | _ -> ());
    List.iter walk kids
  in
  walk dd;
  (* per-schema-node chain order and population *)
  let root = Catalog.snode_by_id st.Store.cat doc.Catalog.schema_root_id in
  List.iter
    (fun (s : Catalog.snode) ->
      let count = ref 0 in
      let last = ref None in
      Seq.iter
        (fun d ->
          incr count;
          let l = Node.label st d in
          (match !last with
           | Some prev when Sedna_nid.Nid.compare prev l >= 0 ->
             err "labels out of order in the chain of schema node %d" s.Catalog.id
           | _ -> ());
          last := Some l)
        (Traverse.scan_snode st s);
      if !count <> s.Catalog.node_count then
        err "schema node %d: node_count %d but %d stored" s.Catalog.id
          s.Catalog.node_count !count)
    (root :: Catalog.schema_descendants root);
  List.rev !errors

let check_all (st : Store.t) : (string * string list) list =
  Catalog.document_names st.Store.cat
  |> List.map (fun name -> (name, check_document st name))
  |> List.filter (fun (_, errs) -> errs <> [])
