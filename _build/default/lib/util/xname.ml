(* Qualified names.  The descriptive schema and the query compiler share
   this representation.  Prefix is kept for serialization fidelity; name
   equality is (uri, local). *)

type t = { prefix : string; uri : string; local : string }

let make ?(prefix = "") ?(uri = "") local = { prefix; uri; local }

let local t = t.local
let uri t = t.uri
let prefix t = t.prefix

let equal a b = String.equal a.uri b.uri && String.equal a.local b.local

let compare a b =
  let c = String.compare a.uri b.uri in
  if c <> 0 then c else String.compare a.local b.local

let hash t = Hashtbl.hash (t.uri, t.local)

(* Display form: prefix:local when prefixed, else local. *)
let to_string t =
  if t.prefix = "" then t.local else t.prefix ^ ":" ^ t.local

(* Clark notation {uri}local, canonical for diagnostics. *)
let to_clark t = if t.uri = "" then t.local else "{" ^ t.uri ^ "}" ^ t.local

let of_string s =
  match String.index_opt s ':' with
  | None -> make s
  | Some i ->
    make
      ~prefix:(String.sub s 0 i)
      (String.sub s (i + 1) (String.length s - i - 1))

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* XML name validity: simplified NCName check over ASCII plus any byte
   >= 0x80 (we treat UTF-8 continuation bytes as name characters, which
   accepts all well-formed UTF-8 names and some ill-formed ones; full
   Unicode classification is out of scope). *)
let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  || Char.code c >= 0x80

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let is_ncname s =
  String.length s > 0
  && is_name_start s.[0]
  && (let ok = ref true in
      String.iter (fun c -> if not (is_name_char c) then ok := false) s;
      !ok)
