lib/util/error.ml: Format Printexc Printf
