lib/util/xname.ml: Char Format Hashtbl String
