lib/util/counters.mli:
