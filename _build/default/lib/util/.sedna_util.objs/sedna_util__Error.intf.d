lib/util/error.mli: Format
