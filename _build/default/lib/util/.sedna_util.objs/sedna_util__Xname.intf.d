lib/util/xname.mli: Format
