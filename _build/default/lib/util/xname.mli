(** Qualified names, shared by the XML substrate, the descriptive
    schema and the query compiler.  Equality and ordering use
    (uri, local); the prefix is kept for serialization fidelity. *)

type t = { prefix : string; uri : string; local : string }

val make : ?prefix:string -> ?uri:string -> string -> t

val local : t -> string
val uri : t -> string
val prefix : t -> string

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_string : t -> string
(** Display form: [prefix:local] when prefixed. *)

val to_clark : t -> string
(** Clark notation [{uri}local], for diagnostics. *)

val of_string : string -> t
(** Split on the first colon into prefix and local part. *)

val pp : Format.formatter -> t -> unit

val is_name_start : char -> bool
val is_name_char : char -> bool

val is_ncname : string -> bool
(** Simplified NCName check (ASCII name characters plus any byte above
    0x7f, accepting all well-formed UTF-8 names). *)
