(** A from-scratch, non-validating XML parser producing a SAX-style
    event stream: elements, attributes, namespaces (xmlns/xmlns:p),
    text with predefined and character entities, CDATA, comments,
    processing instructions; the XML declaration and DOCTYPE are
    skipped.  Errors raise with line/column positions. *)

type options = {
  strip_boundary_whitespace : bool;
      (** drop whitespace-only text between markup (default) *)
  namespaces : bool;  (** resolve prefixes through xmlns bindings *)
}

val default_options : options

type state

val create : ?options:options -> string -> state
val next : state -> Xml_event.t option
(** Pull the next event; [None] at end of input. *)

val events : ?options:options -> string -> Xml_event.t list
(** Parse the whole document into an event list. *)

(** A simple in-memory tree, for tests and temporary documents. *)
type tree =
  | Element of Sedna_util.Xname.t * Xml_event.attribute list * tree list
  | Tree_text of string
  | Tree_comment of string
  | Tree_pi of string * string

val parse_tree : ?options:options -> string -> tree list
