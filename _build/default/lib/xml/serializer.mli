(** Serialize an event stream back to XML text.  Indentation is off by
    default so round trips do not invent whitespace; empty elements
    serialize self-closed. *)

type options = { indent : bool; xml_declaration : bool }

val default_options : options

type sink

val create : ?options:options -> unit -> sink
val event : sink -> Xml_event.t -> unit
val contents : sink -> string

val to_string : ?options:options -> Xml_event.t list -> string
