(* SAX-style event stream shared by the parser, the bulk loader and the
   serializer.  Attributes arrive with their owner's Start_element. *)

type attribute = { name : Sedna_util.Xname.t; value : string }

type t =
  | Start_document
  | End_document
  | Start_element of Sedna_util.Xname.t * attribute list
  | End_element
  | Text of string
  | Comment of string
  | Processing_instruction of string * string (* target, data *)

let pp ppf = function
  | Start_document -> Format.fprintf ppf "start-document"
  | End_document -> Format.fprintf ppf "end-document"
  | Start_element (n, atts) ->
    Format.fprintf ppf "<%a%s>" Sedna_util.Xname.pp n
      (if atts = [] then "" else Printf.sprintf " (+%d attrs)" (List.length atts))
  | End_element -> Format.fprintf ppf "</>"
  | Text s -> Format.fprintf ppf "text(%S)" s
  | Comment s -> Format.fprintf ppf "comment(%S)" s
  | Processing_instruction (t, d) -> Format.fprintf ppf "pi(%s,%S)" t d
