lib/xml/escape.mli:
