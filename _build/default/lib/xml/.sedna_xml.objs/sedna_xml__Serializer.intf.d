lib/xml/serializer.mli: Xml_event
