lib/xml/xml_parser.ml: Buffer Error Escape Format List Option Sedna_util String Xml_event Xname
