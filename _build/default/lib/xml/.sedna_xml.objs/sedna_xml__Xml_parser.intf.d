lib/xml/xml_parser.mli: Sedna_util Xml_event
