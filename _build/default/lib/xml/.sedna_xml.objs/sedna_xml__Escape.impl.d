lib/xml/escape.ml: Buffer Char List Option String
