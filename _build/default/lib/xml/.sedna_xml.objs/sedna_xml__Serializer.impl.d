lib/xml/serializer.ml: Buffer Error Escape List Sedna_util Xml_event Xname
