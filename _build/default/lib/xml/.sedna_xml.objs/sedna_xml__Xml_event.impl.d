lib/xml/xml_event.ml: Format List Printf Sedna_util
