(** Entity expansion and character escaping. *)

val expand_entity : string -> string option
(** Predefined entities (lt gt amp apos quot) and character references
    ([#ddd], [#xhhh], emitted as UTF-8); [None] when unknown. *)

val escape_text : string -> string
(** Escape the markup characters for element content. *)

val escape_attribute : string -> string
(** Escape markup, quotes, tab and newline for attribute values. *)
