(* Serialize an event stream back to XML text.  Indentation is optional
   (off by default: round-tripping must not invent whitespace). *)

open Sedna_util

type options = { indent : bool; xml_declaration : bool }

let default_options = { indent = false; xml_declaration = false }

type sink = {
  buf : Buffer.t;
  opts : options;
  mutable depth : int;
  mutable open_tag : bool; (* a start tag is open, '>' not yet written *)
  mutable stack : (Xname.t * bool ref) list; (* name, had-children flag *)
}

let create ?(options = default_options) () =
  let buf = Buffer.create 1024 in
  if options.xml_declaration then
    Buffer.add_string buf "<?xml version=\"1.0\"?>\n";
  { buf; opts = options; depth = 0; open_tag = false; stack = [] }

let close_open_tag sink =
  if sink.open_tag then begin
    Buffer.add_char sink.buf '>';
    sink.open_tag <- false
  end

let newline_indent sink =
  if sink.opts.indent then begin
    Buffer.add_char sink.buf '\n';
    for _ = 1 to sink.depth do
      Buffer.add_string sink.buf "  "
    done
  end

let mark_child sink =
  match sink.stack with (_, had) :: _ -> had := true | [] -> ()

let event sink (e : Xml_event.t) =
  match e with
  | Xml_event.Start_document | Xml_event.End_document -> ()
  | Xml_event.Start_element (name, atts) ->
    close_open_tag sink;
    if sink.depth > 0 then newline_indent sink;
    mark_child sink;
    Buffer.add_char sink.buf '<';
    Buffer.add_string sink.buf (Xname.to_string name);
    List.iter
      (fun { Xml_event.name = an; value } ->
        Buffer.add_char sink.buf ' ';
        Buffer.add_string sink.buf (Xname.to_string an);
        Buffer.add_string sink.buf "=\"";
        Buffer.add_string sink.buf (Escape.escape_attribute value);
        Buffer.add_char sink.buf '"')
      atts;
    sink.open_tag <- true;
    sink.depth <- sink.depth + 1;
    sink.stack <- (name, ref false) :: sink.stack
  | Xml_event.End_element -> (
    match sink.stack with
    | (name, had) :: rest ->
      sink.stack <- rest;
      sink.depth <- sink.depth - 1;
      if sink.open_tag then begin
        Buffer.add_string sink.buf "/>";
        sink.open_tag <- false
      end
      else begin
        if !had then newline_indent sink;
        Buffer.add_string sink.buf "</";
        Buffer.add_string sink.buf (Xname.to_string name);
        Buffer.add_char sink.buf '>'
      end
    | [] ->
      Error.raise_error Error.Xml_parse "serializer: unbalanced end element")
  | Xml_event.Text s ->
    close_open_tag sink;
    mark_child sink;
    Buffer.add_string sink.buf (Escape.escape_text s)
  | Xml_event.Comment s ->
    close_open_tag sink;
    newline_indent sink;
    mark_child sink;
    Buffer.add_string sink.buf "<!--";
    Buffer.add_string sink.buf s;
    Buffer.add_string sink.buf "-->"
  | Xml_event.Processing_instruction (t, d) ->
    close_open_tag sink;
    newline_indent sink;
    mark_child sink;
    Buffer.add_string sink.buf "<?";
    Buffer.add_string sink.buf t;
    if d <> "" then begin
      Buffer.add_char sink.buf ' ';
      Buffer.add_string sink.buf d
    end;
    Buffer.add_string sink.buf "?>"

let contents sink = Buffer.contents sink.buf

let to_string ?options (evs : Xml_event.t list) =
  let sink = create ?options () in
  List.iter (event sink) evs;
  contents sink
