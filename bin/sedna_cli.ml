(* An interactive shell against a Sedna database directory: XQuery
   queries, XUpdate statements and DDL, plus a few \-commands for
   transaction control and inspection.

     sedna_cli --db /path/to/dbdir [--create] [--exec STMT]...

   Statements are terminated by '&' on its own line or end-of-input
   (so multi-line queries work), like Sedna's own terminal. *)

open Sedna_core

let run_statement_inner session text =
  match String.trim text with
  | "" -> ()
  | "\\begin" ->
    Sedna_db.Session.begin_txn session;
    print_endline "transaction started"
  | "\\begin-ro" ->
    Sedna_db.Session.begin_txn ~read_only:true session;
    print_endline "read-only transaction started"
  | "\\commit" ->
    Sedna_db.Session.commit session;
    print_endline "committed"
  | "\\rollback" ->
    Sedna_db.Session.rollback session;
    print_endline "rolled back"
  | "\\documents" ->
    let db = Sedna_db.Session.database session in
    List.iter print_endline (Catalog.document_names (Database.catalog db))
  | "\\counters" ->
    List.iter
      (fun (k, v) -> Printf.printf "%-24s %d\n" k v)
      (Sedna_util.Counters.snapshot ())
  | "\\counters reset" ->
    Sedna_util.Counters.reset_all ();
    print_endline "counters reset"
  | "\\trace" -> (
    match Sedna_util.Trace.to_json_lines () with
    | "" -> print_endline "trace buffer is empty"
    | lines -> print_endline lines)
  | "\\trace clear" ->
    Sedna_util.Trace.clear ();
    print_endline "trace buffer cleared"
  | "\\traces" -> (
    match Sedna_util.Span.summaries () with
    | [] -> print_endline "no traces retained"
    | ts ->
      List.iter
        (fun (id, nspans, root, total_s) ->
          Printf.printf "%s  %2d spans  root %-16s %8.3f ms\n" id nspans root
            (total_s *. 1000.))
        ts)
  | "\\slow" -> (
    match Sedna_util.Slow_log.dump () with
    | [] -> print_endline "slow log is empty"
    | _ -> print_endline (Sedna_util.Slow_log.to_json_lines ()))
  | "\\slow clear" ->
    Sedna_util.Slow_log.clear ();
    print_endline "slow log cleared"
  | "\\checkpoint" ->
    Database.checkpoint (Sedna_db.Session.database session);
    print_endline "checkpoint complete"
  | "\\check" -> (
    let db = Sedna_db.Session.database session in
    match Integrity.check_all (Database.store db) with
    | [] -> print_endline "all documents structurally consistent"
    | problems ->
      List.iter
        (fun (doc, errs) ->
          Printf.printf "document %S:\n" doc;
          List.iter (fun e -> Printf.printf "  %s\n" e) errs)
        problems)
  | "\\faults" ->
    List.iter
      (fun (name, hits, armed) ->
        Printf.printf "%-20s %6d hits%s\n" name hits
          (match armed with
           | Some p -> Printf.sprintf "  armed: %s" p
           | None -> ""))
      (Sedna_util.Fault.report ())
  | "\\faults disarm" ->
    Sedna_util.Fault.disarm_all ();
    print_endline "all fault policies disarmed"
  | "\\netfaults" ->
    List.iter
      (fun (name, hits, armed) ->
        Printf.printf "%-20s %6d hits%s\n" name hits
          (match armed with
           | Some p -> Printf.sprintf "  armed: %s" p
           | None -> ""))
      (Sedna_util.Netfault.report ());
    (match Sedna_util.Netfault.partitions () with
     | [] -> ()
     | ps -> List.iter (fun (a, b) -> Printf.printf "partition: %s->%s\n" a b) ps)
  | "\\netfaults disarm" ->
    Sedna_util.Netfault.disarm_all ();
    print_endline "all network fault policies disarmed, partitions healed"
  | "\\netfaults heal" ->
    Sedna_util.Netfault.heal_all ();
    print_endline "all partitions healed"
  | "\\scrub" ->
    (* one synchronous scrub pass over the session's database (the
       local shell is single-threaded, so no lock injection needed) *)
    let db = Sedna_db.Session.database session in
    let st = Scrubber.run_pass (Scrubber.create db) in
    Printf.printf
      "scrub pass: %d pages checked, %d corrupt; repaired %d pool / %d wal        / %d standby; %d deferred, %d failed\n"
      st.Scrubber.checked st.Scrubber.corrupt st.Scrubber.repaired_pool
      st.Scrubber.repaired_wal st.Scrubber.repaired_standby
      st.Scrubber.deferred st.Scrubber.failed
  | "\\scrub status" ->
    let g = Sedna_util.Counters.get in
    let open Sedna_util.Counters in
    Printf.printf
      "passes: %d  pages checked: %d  corrupt: %d\n\
       repaired: %d pool / %d wal / %d standby; deferred: %d  failed: %d\n\
       degraded: %s (entered %d, recovered %d, writes rejected %d)\n"
      (g scrub_passes) (g scrub_pages_checked) (g scrub_corrupt)
      (g scrub_repaired_pool) (g scrub_repaired_wal) (g scrub_repaired_standby)
      (g scrub_deferred) (g scrub_repair_failed)
      (if g degraded_state > 0 then "YES" else "no")
      (g degraded_entered) (g degraded_recovered) (g degraded_rejected_writes)
  | "\\quit" | "\\q" -> raise Exit
  | text when String.length text > 12 && String.sub text 0 12 = "\\faults arm " -> (
    let spec = String.trim (String.sub text 12 (String.length text - 12)) in
    try
      Sedna_util.Fault.arm_spec spec;
      Printf.printf "armed %s\n" spec
    with e -> Printf.printf "error: %s\n" (Printexc.to_string e))
  | text when String.length text > 15 && String.sub text 0 15 = "\\netfaults arm " -> (
    let spec = String.trim (String.sub text 15 (String.length text - 15)) in
    try
      Sedna_util.Netfault.arm_spec spec;
      Printf.printf "armed %s\n" spec
    with e -> Printf.printf "error: %s\n" (Printexc.to_string e))
  | text when String.length text > 7 && String.sub text 0 7 = "\\trace " -> (
    (* \trace <id>: the span tree of one retained trace (\trace clear is
       matched above and still clears the event ring) *)
    let id = String.trim (String.sub text 7 (String.length text - 7)) in
    match Sedna_util.Span.render id with
    | Some tree -> print_string tree
    | None -> Printf.printf "no trace %s retained (\\traces lists them)\n" id)
  | text when String.length text > 9 && String.sub text 0 9 = "\\profile " -> (
    let q = String.sub text 9 (String.length text - 9) in
    try
      print_endline
        (Sedna_db.Session.render_profile (Sedna_db.Session.profile session q))
    with e -> Printf.printf "error: %s\n" (Sedna_util.Error.to_string e))
  | text when String.length text > 9 && String.sub text 0 9 = "\\explain " -> (
    let q = String.sub text 9 (String.length text - 9) in
    try
      let cat = Database.catalog (Sedna_db.Session.database session) in
      print_endline (Sedna_xquery.Xq_pp.explain ~catalog:cat q)
    with e -> Printf.printf "error: %s\n" (Sedna_util.Error.to_string e))
  | text -> print_endline (Sedna_db.Session.execute_string session text)

(* one guard for every statement and \-command: Exit quits, a simulated
   crash is process death, anything else is reported and the shell
   lives on (corrupt pages included — the user's next move is likely
   \check or a restore) *)
let run_statement session text =
  try run_statement_inner session text with
  | Exit -> raise Exit
  | Sedna_util.Fault.Injected_crash _ as c -> raise c
  | e -> Printf.printf "error: %s\n" (Sedna_util.Error.to_string e)

let interactive session =
  print_endline
    "Sedna shell. Statements end with '&' on its own line; \\q quits.\n\
     Commands: \\begin \\begin-ro \\commit \\rollback \\documents\n\
     \\counters (\\counters reset) \\trace (\\trace clear)\n\
     \\traces \\trace <id> (span tree) \\slow (\\slow clear)\n\
     \\checkpoint \\check (integrity) \\scrub (\\scrub status)\n\
     \\explain <query> \\profile <query>\n\
     \\faults (\\faults arm <site>:<policy>, \\faults disarm)\n\
     \\netfaults (\\netfaults arm <spec>, \\netfaults disarm, \\netfaults heal)";
  let buf = Buffer.create 256 in
  try
    while true do
      print_string (if Buffer.length buf = 0 then "sedna> " else "     > ");
      flush stdout;
      match input_line stdin with
      | exception End_of_file ->
        if Buffer.length buf > 0 then run_statement session (Buffer.contents buf);
        raise Exit
      | "&" ->
        run_statement session (Buffer.contents buf);
        Buffer.clear buf
      | line when Buffer.length buf = 0 && String.length line > 0 && line.[0] = '\\'
        -> run_statement session line
      | line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n'
    done
  with Exit -> ()

(* ---- the three modes: local shell, server, network client ------------- *)

let local_mode db_dir create stmts =
  let db =
    if create || not (Sys.file_exists (Filename.concat db_dir "data.sdb")) then
      Database.create db_dir
    else Database.open_existing db_dir
  in
  let session = Sedna_db.Session.connect db in
  match
    match stmts with
    | [] -> interactive session
    | stmts -> List.iter (run_statement session) stmts
  with
  | () -> Database.close db
  | exception Sedna_util.Fault.Injected_crash site ->
    (* simulated process death: no clean shutdown — the next open runs
       recovery, which is the point of the drill *)
    Printf.eprintf "simulated crash at fault site %s\n" site;
    exit 1

let parse_endpoint spec =
  match String.rindex_opt spec ':' with
  | Some i -> (
    let h = String.sub spec 0 i in
    let p = String.sub spec (i + 1) (String.length spec - i - 1) in
    match int_of_string_opt p with
    | Some p when h <> "" -> (h, p)
    | _ -> failwith (Printf.sprintf "bad endpoint %S (expected HOST:PORT)" spec))
  | None -> failwith (Printf.sprintf "bad endpoint %S (expected HOST:PORT)" spec)

(* --serve: register the database with a governor, start the serving
   layer and run until SIGINT/SIGTERM, then drain gracefully
   (in-flight statements finish, databases checkpoint, WAL closes).
   With --repl-port the primary also serves WAL shipping; with
   --standby-of the database is not opened locally at all — it is
   seeded and then continuously applied from the primary, and the
   server accepts the PROMOTE admin statement. *)
let serve_mode db_dir create host port db_name max_sessions query_timeout
    repl_port standby_of metrics_port scrub_rate repair_from =
  let g = Sedna_db.Governor.create () in
  let name =
    match db_name with Some n -> n | None -> Filename.basename db_dir
  in
  let promoted = ref false in
  let recv, sender =
    match standby_of with
    | Some spec ->
      let rhost, rport = parse_endpoint spec in
      let r =
        Sedna_replication.Repl_receiver.start ~gov:g ~name ~dir:db_dir
          ~host:rhost ~port:rport ()
      in
      (* a standby with its own replication port serves page-repair
         fetches (Wire.Page_request) for the primary's scrubber — the
         source closure tracks the live database across re-seeds *)
      ( Some r,
        Option.map
          (fun p ->
            Sedna_replication.Repl_sender.start_source ~host ~port:p ~gov:g
              (fun () -> Sedna_replication.Repl_receiver.database r))
          repl_port )
    | None ->
      let db =
        if create || not (Sys.file_exists (Filename.concat db_dir "data.sdb"))
        then Sedna_db.Governor.create_database g ~name ~dir:db_dir
        else Sedna_db.Governor.open_database g ~name ~dir:db_dir
      in
      ( None,
        Option.map
          (fun p -> Sedna_replication.Repl_sender.start ~host ~port:p ~gov:g db)
          repl_port )
  in
  Sedna_db.Governor.set_limits g
    { Sedna_db.Governor.max_sessions; query_timeout_s = query_timeout };
  let srv =
    Sedna_server.Server.start
      ~config:{ Sedna_server.Server.default_config with host; port }
      ?on_promote:
        (Option.map
           (fun r () ->
             let msg = Sedna_replication.Repl_receiver.promote r in
             promoted := true;
             msg)
           recv)
      g
  in
  (* monitoring listener: /metrics scrapes, /health readiness.  Gauge
     closures look the database up per scrape — on a standby it only
     exists once the seed lands. *)
  let find_db () =
    match recv with
    | Some r -> Sedna_replication.Repl_receiver.database r
    | None -> Sedna_db.Governor.find_database g name
  in
  (* self-healing: online scrubber on the primary (the standby's copy
     is rewritten by the apply stream; re-seeds would invalidate a
     scrubber's database handle) and the resource watchdog everywhere *)
  let scrubber =
    if scrub_rate <= 0 || standby_of <> None then None
    else
      match find_db () with
      | None -> None
      | Some db ->
        let fetch =
          Option.map
            (fun spec ->
              let rh, rp = parse_endpoint spec in
              Sedna_replication.Repl_client.page_fetcher ~host:rh ~port:rp db)
            repair_from
        in
        let sc =
          Scrubber.create ~pages_per_sec:scrub_rate ?fetch
            ~lock:(fun f -> Sedna_db.Governor.with_engine g f)
            db
        in
        Scrubber.start sc;
        Some sc
  in
  let watchdog = Watchdog.start ~dir:db_dir ~get_db:find_db () in
  let msrv =
    Option.map
      (fun mport ->
        let db_gauge gname help read =
          {
            Sedna_server.Metrics_http.g_name = gname;
            g_help = help;
            g_read =
              (fun () -> match find_db () with Some db -> read db | None -> 0);
          }
        in
        let gauges =
          [
            db_gauge "buffer.occupancy" "Buffer pool frames holding a page"
              (fun db -> Buffer_mgr.occupancy (Database.buffer db));
            db_gauge "wal.size_bytes" "WAL file size in bytes" (fun db ->
                Wal.size (Database.wal db));
            {
              Sedna_server.Metrics_http.g_name = "sessions.active";
              g_help = "Sessions currently connected";
              g_read = (fun () -> Sedna_db.Governor.session_count g);
            };
          ]
        in
        let health () =
          if Sedna_server.Server.is_draining srv then (false, "draining")
          else
            match find_db () with
            | Some db when Database.is_fenced db ->
              (* deposed primary: still answers reads, but a load
                 balancer must stop routing here *)
              (false, "fenced")
            | Some db when Database.is_degraded db ->
              (* resource exhaustion: reads fine, writes shed — drop
                 out of the write pool until the watchdog recovers *)
              (false, "degraded")
            | _ ->
              if recv <> None && not !promoted then (true, "standby")
              else (true, "primary")
        in
        Sedna_server.Metrics_http.start ~host ~gauges ~health ~port:mport ())
      metrics_port
  in
  Printf.printf "serving database %S on %s:%d (max %d sessions%s)\n%!" name host
    (Sedna_server.Server.port srv)
    max_sessions
    (if query_timeout > 0. then
       Printf.sprintf ", query timeout %.1fs" query_timeout
     else "");
  (match sender with
   | Some s ->
     Printf.printf "shipping WAL on %s:%d\n%!" host
       (Sedna_replication.Repl_sender.port s)
   | None -> ());
  (match standby_of with
   | Some spec ->
     Printf.printf "standby of %s; writes refused until PROMOTE\n%!" spec
   | None -> ());
  (match msrv with
   | Some m ->
     Printf.printf "metrics endpoint on %s:%d (/metrics, /health)\n%!" host
       (Sedna_server.Metrics_http.port m)
   | None -> ());
  (match scrubber with
   | Some _ ->
     Printf.printf "online scrubber at %d pages/s%s\n%!" scrub_rate
       (match repair_from with
        | Some spec -> Printf.sprintf ", standby repair from %s" spec
        | None -> "")
   | None -> ());
  let stop_requested = ref false in
  let handler _ = stop_requested := true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle handler);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle handler);
  while not !stop_requested do
    try Unix.sleepf 0.1 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  Printf.printf "draining...\n%!";
  Option.iter Scrubber.stop scrubber;
  Watchdog.stop watchdog;
  Option.iter Sedna_replication.Repl_receiver.stop recv;
  Option.iter Sedna_replication.Repl_sender.stop sender;
  Sedna_server.Server.stop srv;
  Option.iter Sedna_server.Metrics_http.stop msrv;
  print_endline "server stopped"

(* --connect: drive a running server over the wire protocol instead of
   opening the directory locally. *)
let connect_mode host port db_name stmts =
  let name = match db_name with Some n -> n | None -> "db" in
  (* a few connect retries by default: a server mid-restart (or a
     standby mid-promotion) looks like ECONNREFUSED for a moment *)
  let c = Sedna_server.Server_client.connect ~host ~port ~retries:3 () in
  ignore (Sedna_server.Server_client.open_db c name);
  List.iter
    (fun stmt ->
      try print_endline (Sedna_server.Server_client.execute_string c stmt) with
      | Sedna_server.Server_client.Remote_error (code, msg) ->
        Printf.printf "error: %s: %s\n" code msg)
    stmts;
  Sedna_server.Server_client.close c

(* --promote: ask a standby server to take over as primary. *)
let promote_mode host port db_name =
  let name = match db_name with Some n -> n | None -> "db" in
  match Sedna_replication.Repl_client.promote ~host ~port ~database:name with
  | msg -> print_endline msg
  | exception Sedna_server.Server_client.Remote_error (code, msg) ->
    Printf.eprintf "error: %s: %s\n" code msg;
    exit 1

let main db_dir create stmts serve connect promote host port db_name
    max_sessions query_timeout repl_port standby_of metrics_port scrub_rate
    repair_from slow_ms slow_log =
  (* SEDNA_FAULT=<site>:<policy>[,...] arms injection before the
     database opens, so recovery itself can be put under fault;
     SEDNA_NETFAULT does the same for the wire layer *)
  Sedna_util.Fault.arm_from_env ();
  Sedna_util.Netfault.arm_from_env ();
  (* slow-statement log: SEDNA_SLOW_MS / SEDNA_SLOW_LOG first, explicit
     flags override *)
  Sedna_util.Slow_log.init_from_env ();
  (match slow_ms with
   | Some ms -> Sedna_util.Slow_log.set_threshold (ms /. 1000.)
   | None -> ());
  (match slow_log with
   | Some path -> Sedna_util.Slow_log.set_file (Some path)
   | None -> ());
  match (promote, connect, serve, db_dir) with
  | true, _, _, _ -> promote_mode host port db_name
  | false, true, _, _ -> connect_mode host port db_name stmts
  | false, false, true, Some dir ->
    (try
       serve_mode dir create host port db_name max_sessions query_timeout
         repl_port standby_of metrics_port scrub_rate repair_from
     with Failure m ->
       prerr_endline ("sedna_cli: " ^ m);
       exit 2)
  | false, false, false, Some dir -> local_mode dir create stmts
  | false, false, _, None ->
    prerr_endline "sedna_cli: --db is required unless --connect is used";
    exit 2

open Cmdliner

let db_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "db" ] ~docv:"DIR"
        ~doc:"Database directory (created if missing).  Required except \
              with $(b,--connect).")

let create_arg =
  Arg.(value & flag & info [ "create" ] ~doc:"Force creation of a fresh database.")

let exec_arg =
  Arg.(
    value & opt_all string []
    & info [ "exec"; "e" ] ~docv:"STMT"
        ~doc:"Execute a statement and exit (repeatable).")

let serve_arg =
  Arg.(
    value & flag
    & info [ "serve" ]
        ~doc:"Serve the database over TCP until SIGINT/SIGTERM, then drain \
              gracefully.")

let connect_arg =
  Arg.(
    value & flag
    & info [ "connect" ]
        ~doc:"Connect to a running server instead of opening a directory; \
              statements from $(b,--exec) run remotely.")

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"Bind/connect address.")

let port_arg =
  Arg.(value & opt int 5050 & info [ "port" ] ~docv:"PORT" ~doc:"Server port.")

let db_name_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "db-name" ] ~docv:"NAME"
        ~doc:"Database name clients open (default: basename of $(b,--db)).")

let max_sessions_arg =
  Arg.(
    value & opt int 64
    & info [ "max-sessions" ] ~docv:"N"
        ~doc:"Admission control: refuse connections past this many sessions \
              (SE-OVERLOADED).")

let query_timeout_arg =
  Arg.(
    value & opt float 0.
    & info [ "query-timeout" ] ~docv:"SECONDS"
        ~doc:"Per-statement wall-clock budget; 0 disables (SE-TIMEOUT).")

let repl_port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "repl-port" ] ~docv:"PORT"
        ~doc:"With $(b,--serve): also ship the WAL to standbys on this \
              replication port (0 picks an ephemeral port).")

let standby_of_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "standby-of" ] ~docv:"HOST:PORT"
        ~doc:"With $(b,--serve): run as a hot standby of the primary's \
              replication endpoint.  The database is seeded and then \
              continuously applied; sessions are read-only until \
              $(b,PROMOTE) (or $(b,--promote)).")

let metrics_port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "metrics-port" ] ~docv:"PORT"
        ~doc:"With $(b,--serve): expose $(b,GET /metrics) (Prometheus text \
              exposition) and $(b,GET /health) (readiness probe) on this \
              port (0 picks an ephemeral port).")

let scrub_rate_arg =
  Arg.(
    value & opt int 128
    & info [ "scrub-rate" ] ~docv:"PAGES_PER_SEC"
        ~doc:"With $(b,--serve): background scrub rate in pages per second \
              (0 disables the online scrubber).  The scrubber verifies every \
              data page against its CRC sidecar and repairs confirmed-corrupt \
              pages online.")

let repair_from_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "repair-from" ] ~docv:"HOST:PORT"
        ~doc:"With $(b,--serve): a standby's replication endpoint to fetch \
              clean page copies from when a corrupt page has no committed \
              WAL after-image left (standby-assisted repair).")

let slow_ms_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:"Slow-statement threshold in milliseconds (default 1000; also \
              $(b,SEDNA_SLOW_MS)).  Statements slower than this are kept in \
              the $(b,\\\\slow) ring.")

let slow_log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "slow-log" ] ~docv:"FILE"
        ~doc:"Append each slow-statement record as a JSON line to this file \
              (also $(b,SEDNA_SLOW_LOG)).")

let promote_arg =
  Arg.(
    value & flag
    & info [ "promote" ]
        ~doc:"Ask the server at $(b,--host)/$(b,--port) to promote its \
              standby database ($(b,--db-name)) to primary, then exit.")

let cmd =
  let doc = "Sedna XML database shell, server and network client" in
  Cmd.v
    (Cmd.info "sedna_cli" ~doc)
    Term.(
      const main $ db_arg $ create_arg $ exec_arg $ serve_arg $ connect_arg
      $ promote_arg $ host_arg $ port_arg $ db_name_arg $ max_sessions_arg
      $ query_timeout_arg $ repl_port_arg $ standby_of_arg $ metrics_port_arg
      $ scrub_rate_arg $ repair_from_arg $ slow_ms_arg $ slow_log_arg)

let () = exit (Cmd.eval cmd)
