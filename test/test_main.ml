let () =
  Alcotest.run "sedna"
    [
      ("nid", Test_nid.suite);
      ("xml", Test_xml.suite);
      ("storage", Test_storage.suite);
      ("nodes", Test_nodes.suite);
      ("txn", Test_txn.suite);
      ("recovery", Test_recovery.suite);
      ("btree", Test_btree.suite);
      ("xquery", Test_xquery.suite);
      ("executor", Test_executor.suite);
      ("executor2", Test_executor2.suite);
      ("axes", Test_axes.suite);
      ("scale", Test_scale.suite);
      ("updates", Test_updates.suite);
      ("session", Test_session.suite);
      ("plan-cache", Test_plan_cache.suite);
      ("metrics", Test_metrics.suite);
      ("write-path", Test_write_path.suite);
      ("baselines", Test_baselines.suite);
      ("fuzz", Test_fuzz.suite);
      ("hier-lock", Test_hier_lock.suite);
      ("crash", Test_crash.suite);
      ("server", Test_server.suite);
      ("replication", Test_replication.suite);
      ("tracing", Test_tracing.suite);
      ("netchaos", Test_netchaos.suite);
      ("scrub", Test_scrub.suite);
      ("regex", Test_rx.suite);
      ("tools", Test_tools.suite);
    ]
