(* The observability subsystem: scoped metric sets (session isolation,
   parent propagation), histogram bucket edges and percentiles, the
   trace ring buffer's wraparound, and the query profiler's row
   accounting against actual result cardinalities. *)

open Sedna_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let with_library ?(books = 120) f =
  Test_util.with_db (fun db ->
      ignore
        (Test_util.load_events db "lib" (Sedna_workloads.Generators.library ~books ()));
      f db)

let create_price_index db =
  ignore
    (Test_util.exec db
       {|CREATE INDEX "price" ON doc("lib")/library/book BY price AS xs:integer|})

(* ---- scoped counter sets ------------------------------------------- *)

let test_scoped_sets () =
  let parent = Metrics.create ~name:"p" () in
  let a = Metrics.create ~name:"a" ~parent () in
  let b = Metrics.create ~name:"b" ~parent () in
  Metrics.bump a "x";
  Metrics.bump a "x";
  Metrics.bump b "x";
  Metrics.bump b "y" ~n:5;
  check_int "a sees its own" 2 (Metrics.get a "x");
  check_int "b not polluted by a" 1 (Metrics.get b "x");
  check_int "a has no y" 0 (Metrics.get a "y");
  check_int "parent aggregates x" 3 (Metrics.get parent "x");
  check_int "parent aggregates y" 5 (Metrics.get parent "y");
  (* a child reset keeps the parent totals *)
  Metrics.reset a;
  check_int "reset child" 0 (Metrics.get a "x");
  check_int "parent keeps totals" 3 (Metrics.get parent "x");
  (* snapshot hides zeros unless asked *)
  check_bool "snapshot hides zeroed cells" true
    (List.assoc_opt "x" (Metrics.snapshot a) = None);
  check_bool "snapshot ~zeros keeps them" true
    (List.assoc_opt "x" (Metrics.snapshot ~zeros:true a) = Some 0)

let test_global_shares_counters () =
  (* Metrics.global is the Counters table: a bump through a scoped set
     with global as parent lands in the legacy API too *)
  let name = "test.metrics.shared" in
  Counters.reset name;
  let s = Metrics.create ~name:"scope" ~parent:Metrics.global () in
  Metrics.bump s name ~n:7;
  check_int "legacy Counters sees the bump" 7 (Counters.get name);
  check_int "scoped view" 7 (Metrics.get s name);
  Counters.reset name

let test_diff () =
  let before = [ ("a", 2); ("b", 5) ] in
  let after = [ ("a", 2); ("b", 9); ("c", 1) ] in
  Alcotest.(check (list (pair string int)))
    "diff drops unchanged, keeps new" [ ("b", 4); ("c", 1) ]
    (Metrics.diff ~before ~after)

let test_counters_snapshot_zero_filter () =
  (* registered-but-never-bumped cells must not show up in snapshot *)
  let name = "test.metrics.zero" in
  let cell = Counters.cell name in
  cell := 0;
  check_bool "zero cell filtered" true
    (List.assoc_opt name (Counters.snapshot ()) = None);
  check_bool "snapshot_all keeps it" true
    (List.assoc_opt name (Counters.snapshot_all ()) = Some 0);
  Counters.bump name;
  check_bool "appears once bumped" true
    (List.assoc_opt name (Counters.snapshot ()) = Some 1);
  Counters.reset name

(* ---- session isolation --------------------------------------------- *)

let test_session_isolation () =
  with_library (fun db ->
      let s1 = Sedna_db.Session.connect db in
      let s2 = Sedna_db.Session.connect db in
      let q = {|count(doc("lib")/library/book)|} in
      ignore (Sedna_db.Session.execute_string s1 q);
      ignore (Sedna_db.Session.execute_string s1 q);
      ignore (Sedna_db.Session.execute_string s1 q);
      ignore (Sedna_db.Session.execute_string s2 q);
      let h1, m1 = Sedna_db.Session.plan_cache_stats s1 in
      let h2, m2 = Sedna_db.Session.plan_cache_stats s2 in
      check_int "s1 hits" 2 h1;
      check_int "s1 misses" 1 m1;
      check_int "s2 hits (not polluted by s1)" 0 h2;
      check_int "s2 misses" 1 m2;
      (* the same bumps propagated into the global counters *)
      check_bool "global plan.hit >= session hits" true
        (Counters.get Counters.plan_hit >= h1);
      check_int "session latency observations" 3
        (Metrics.hist_count (Sedna_db.Session.latency s1)))

(* ---- histograms ----------------------------------------------------- *)

let test_histogram_edges () =
  let h = Metrics.histogram ~register:false ~buckets:[| 1.0; 2.0; 4.0 |] "edges" in
  (* a value on a bucket's upper bound belongs to that bucket *)
  Metrics.observe h 1.0;
  Metrics.observe h 0.5;
  Metrics.observe h 2.0;
  Metrics.observe h 3.9;
  Metrics.observe h 100.0 (* overflow *);
  check_int "count" 5 (Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "p50 = bound of bucket 2" 2.0 (Metrics.percentile h 0.5);
  check_bool "p99 overflows to infinity" true
    (Metrics.percentile h 0.99 = Float.infinity);
  Alcotest.(check (float 1e-9)) "p20 in first bucket" 1.0 (Metrics.percentile h 0.2);
  let empty = Metrics.histogram ~register:false ~buckets:[| 1.0 |] "empty" in
  check_bool "empty percentile is nan" true (Float.is_nan (Metrics.percentile empty 0.5))

(* ---- trace ring buffer ---------------------------------------------- *)

let test_trace_wraparound () =
  let old_capacity = Trace.capacity () in
  Trace.set_capacity 8;
  Fun.protect
    ~finally:(fun () -> Trace.set_capacity old_capacity)
    (fun () ->
      for i = 0 to 19 do
        Trace.emit (Trace.Checkpoint { pages_flushed = i })
      done;
      check_int "emitted counts everything" 20 (Trace.emitted ());
      let retained = Trace.dump () in
      check_int "ring keeps capacity entries" 8 (List.length retained);
      (* oldest first, and only the 8 most recent survive *)
      let seqs = List.map (fun (e : Trace.entry) -> e.Trace.seq) retained in
      Alcotest.(check (list int)) "seqs 12..19" [ 12; 13; 14; 15; 16; 17; 18; 19 ] seqs;
      let pages =
        List.map
          (fun (e : Trace.entry) ->
            match e.Trace.event with
            | Trace.Checkpoint { pages_flushed } -> pages_flushed
            | _ -> -1)
          retained
      in
      Alcotest.(check (list int)) "payloads survive" [ 12; 13; 14; 15; 16; 17; 18; 19 ]
        pages;
      Trace.clear ();
      check_int "clear empties the ring" 0 (List.length (Trace.dump ())))

let test_trace_statement_events () =
  with_library (fun db ->
      let s = Sedna_db.Session.connect db in
      Trace.clear ();
      ignore (Sedna_db.Session.execute_string s {|count(doc("lib")//book)|});
      let events = List.map (fun (e : Trace.entry) -> e.Trace.event) (Trace.dump ()) in
      let has p = List.exists p events in
      check_bool "statement.start emitted" true
        (has (function Trace.Statement_start _ -> true | _ -> false));
      check_bool "plan cache miss emitted" true
        (has (function Trace.Plan_cache { hit = false; _ } -> true | _ -> false));
      check_bool "txn begin emitted" true
        (has (function Trace.Txn_begin { read_only = true; _ } -> true | _ -> false));
      check_bool "statement.end with sane phases" true
        (has (function
          | Trace.Statement_end { kind = "query"; ok = true; cached = false; total_ms; _ }
            ->
            total_ms >= 0.
          | _ -> false)))

(* ---- profiled plans -------------------------------------------------- *)

let rec flatten (op : Sedna_engine.Profiler.op) =
  op :: List.concat_map flatten op.Sedna_engine.Profiler.children

let test_profile_row_counts () =
  with_library ~books:120 (fun db ->
      create_price_index db;
      let s = Sedna_db.Session.connect db in
      (* how many books have price 42?  (library generator: price = i mod 100) *)
      let expected =
        int_of_string
          (Sedna_db.Session.execute_string s
             {|count(doc("lib")/library/book[price = 42])|})
      in
      check_bool "fixture has matches" true (expected >= 1);
      (* root of a bare node query = result cardinality *)
      let pp =
        Sedna_db.Session.profile s {|doc("lib")/library/book[price = 42]|}
      in
      check_int "root rows = result cardinality" expected
        pp.Sedna_db.Session.pp_rows;
      (* the probe operator is in the tree and produced the rows *)
      let ops = flatten pp.Sedna_db.Session.pp_plan in
      let probe =
        List.find_opt
          (fun (o : Sedna_engine.Profiler.op) ->
            String.length o.Sedna_engine.Profiler.label >= 11
            && String.sub o.Sedna_engine.Profiler.label 0 11 = "index-probe")
          ops
      in
      (match probe with
       | None -> Alcotest.fail "no index-probe operator in profiled plan"
       | Some o ->
         check_int "probe rows" expected o.Sedna_engine.Profiler.rows;
         check_bool "probe counted" true (o.Sedna_engine.Profiler.probes >= 1));
      (* aggregate query: root is the count call, one row *)
      let pp2 =
        Sedna_db.Session.profile s {|count(doc("lib")/library/book[price = 42])|}
      in
      check_int "count() root rows" 1 pp2.Sedna_db.Session.pp_rows;
      check_bool "render mentions the probe" true
        (contains_sub (Sedna_db.Session.render_profile pp2) "index-probe"))

let test_profile_rejects_updates () =
  with_library (fun db ->
      let s = Sedna_db.Session.connect db in
      check_bool "update statements rejected" true
        (try
           ignore (Sedna_db.Session.profile s {|UPDATE delete doc("lib")//book|});
           false
         with _ -> true))

(* ---- governor report -------------------------------------------------- *)

let test_governor_report () =
  let dir = Test_util.fresh_dir () in
  let g = Sedna_db.Governor.create () in
  let db = Sedna_db.Governor.create_database g ~name:"db" ~dir in
  let _, s = Sedna_db.Governor.connect g ~database:"db" in
  ignore (Test_util.load db "d" "<r><a/><a/></r>");
  ignore (Sedna_db.Session.execute_string s {|count(doc("d")//a)|});
  let report = Sedna_db.Governor.observability_report g in
  check_bool "report lists the session" true (contains_sub report "plan cache");
  check_bool "report lists counters" true (contains_sub report "global counters:");
  check_bool "report lists trace section" true (contains_sub report "trace:");
  Sedna_db.Governor.shutdown g

let suite =
  [
    Alcotest.test_case "scoped sets" `Quick test_scoped_sets;
    Alcotest.test_case "global set backs Counters" `Quick test_global_shares_counters;
    Alcotest.test_case "diff" `Quick test_diff;
    Alcotest.test_case "snapshot filters zero cells" `Quick
      test_counters_snapshot_zero_filter;
    Alcotest.test_case "session metric isolation" `Quick test_session_isolation;
    Alcotest.test_case "histogram bucket edges" `Quick test_histogram_edges;
    Alcotest.test_case "trace ring wraparound" `Quick test_trace_wraparound;
    Alcotest.test_case "statement trace events" `Quick test_trace_statement_events;
    Alcotest.test_case "profiled plan row counts" `Quick test_profile_row_counts;
    Alcotest.test_case "profile rejects updates" `Quick test_profile_rejects_updates;
    Alcotest.test_case "governor report" `Quick test_governor_report;
  ]
