(* Observability: request-scoped span trees over TCP (with standby
   apply lag), the slow-statement log, the monotonic clock, the
   thread-safe trace ring, the Prometheus metrics endpoint, and the
   deadline-preempts-lock-wait regression. *)

open Sedna_util
open Sedna_core
open Sedna_db
module Sender = Sedna_replication.Repl_sender
module Recv = Sedna_replication.Repl_receiver
module Server = Sedna_server.Server
module Client = Sedna_server.Server_client
module Mh = Sedna_server.Metrics_http

(* ---- monotonic clock (satellite 1) ------------------------------------ *)

let test_monotonic () =
  let last = ref (Metrics.mono ()) in
  for _ = 1 to 1000 do
    let t = Metrics.mono () in
    if t < !last then Alcotest.fail "monotonic clock went backwards";
    last := t
  done

(* ---- span primitives --------------------------------------------------- *)

let test_wire_codec () =
  Alcotest.(check string) "wire encoding" "00c0ffee00c0ffee:42"
    (Span.wire_of ~trace:"00c0ffee00c0ffee" ~parent:42);
  (match Span.parse_wire "00c0ffee00c0ffee:42" with
   | Some ("00c0ffee00c0ffee", 42) -> ()
   | _ -> Alcotest.fail "parse_wire round trip");
  Alcotest.(check bool) "garbage rejected" true
    (Span.parse_wire "nonsense" = None && Span.parse_wire "" = None)

let test_span_tree_local () =
  Span.clear ();
  let cx = Option.get (Span.make ()) in
  Span.with_current (Some cx) (fun () ->
      let root = Span.start cx "statement" in
      Span.with_span "compile" (fun sp ->
          Alcotest.(check bool) "ambient span opened" true (sp <> None));
      Span.with_span "eval" (fun _ ->
          Span.with_span "lock.wait" (fun _ -> ()));
      Span.finish cx root);
  Span.publish cx;
  let spans = Option.get (Span.find (Span.trace_id cx)) in
  Alcotest.(check int) "four spans collected" 4 (List.length spans);
  let eval = List.find (fun s -> s.Span.sp_name = "eval") spans in
  let lock = List.find (fun s -> s.Span.sp_name = "lock.wait") spans in
  let root = List.find (fun s -> s.Span.sp_name = "statement") spans in
  Alcotest.(check bool) "nesting became parentage" true
    (lock.Span.sp_parent = eval.Span.sp_id
    && eval.Span.sp_parent = root.Span.sp_id
    && root.Span.sp_parent = 0);
  Alcotest.(check bool) "durations closed" true
    (List.for_all (fun s -> s.Span.sp_dur >= 0.) spans);
  match Span.render (Span.trace_id cx) with
  | Some tree ->
    Alcotest.(check bool) "render shows the tree" true
      (String.length tree > 0)
  | None -> Alcotest.fail "render lost the trace"

let test_disabled_is_free () =
  Span.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Span.set_enabled true)
    (fun () ->
      Alcotest.(check bool) "no context when disabled" true (Span.make () = None);
      Span.with_span "x" (fun sp ->
          Alcotest.(check bool) "no ambient span when disabled" true (sp = None)))

(* ---- trace ring under concurrent writers (satellite 2) ----------------- *)

let test_trace_ring_concurrent () =
  let before = Trace.capacity () in
  Trace.set_capacity 64;
  Fun.protect
    ~finally:(fun () -> Trace.set_capacity before)
    (fun () ->
      let writer i () =
        for j = 1 to 200 do
          Trace.emit (Trace.Plan_cache { session = i; hit = j mod 2 = 0 })
        done
      in
      let threads = List.init 4 (fun i -> Thread.create (writer i) ()) in
      List.iter Thread.join threads;
      Alcotest.(check int) "all emits counted" 800 (Trace.emitted ());
      let entries = Trace.dump () in
      Alcotest.(check int) "ring holds exactly its capacity" 64
        (List.length entries);
      let seqs = List.map (fun e -> e.Trace.seq) entries in
      Alcotest.(check int) "sequence numbers unique" (List.length seqs)
        (List.length (List.sort_uniq compare seqs));
      Alcotest.(check bool) "sequence numbers increasing" true
        (List.for_all2 ( < )
           (List.filteri (fun i _ -> i < List.length seqs - 1) seqs)
           (List.tl seqs)))

(* ---- end-to-end: one statement, one trace, spans from every layer ------ *)

(* a primary served over TCP with a standby pulling its WAL *)
let with_repl_server f =
  Fault.disarm_all ();
  let pdir = Test_util.fresh_dir () in
  let sdir = pdir ^ "-standby" in
  let gov_p = Governor.create () in
  let gov_s = Governor.create () in
  let db = Governor.create_database gov_p ~name:"main" ~dir:pdir in
  ignore (Test_util.load db "d" "<r/>");
  let sender = Sender.start ~port:0 ~gov:gov_p db in
  let recv =
    Recv.start ~poll_s:0.005 ~heartbeat_timeout_s:2.0 ~gov:gov_s ~name:"main"
      ~dir:sdir ~host:"127.0.0.1" ~port:(Sender.port sender) ()
  in
  let srv = Server.start gov_p in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Recv.stop recv;
      Sender.stop sender;
      (try Governor.shutdown gov_s with _ -> ());
      try Governor.shutdown gov_p with _ -> ())
    (fun () -> f ~db ~srv ~recv)

let span_names trace =
  match Span.find trace with
  | None -> []
  | Some spans -> List.map (fun s -> s.Span.sp_name) spans

let wait_for ?(timeout_s = 5.) pred =
  let t0 = Metrics.mono () in
  let rec go () =
    if pred () then true
    else if Metrics.mono () -. t0 > timeout_s then false
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

let test_span_tree_over_tcp () =
  with_repl_server (fun ~db ~srv ~recv ->
      Span.clear ();
      let c = Client.connect ~port:(Server.port srv) () in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          ignore (Client.open_db c "main");
          ignore
            (Client.execute c {|UPDATE insert <e>traced</e> into doc("d")/r|});
          let trace =
            match Client.last_trace_id c with
            | Some t -> t
            | None -> Alcotest.fail "client did not record a trace id"
          in
          (* the statement committed, so the standby can catch up to it;
             its apply span lands in the same trace *)
          let epoch = Wal.epoch (Database.wal db) in
          let pos = Wal.size (Database.wal db) in
          Alcotest.(check bool) "standby caught up" true
            (Recv.wait_caught_up ~timeout_s:10. recv ~epoch ~pos);
          Alcotest.(check bool) "standby apply span joins the trace" true
            (wait_for (fun () -> List.mem "standby.apply" (span_names trace)));
          let names = span_names trace in
          List.iter
            (fun want ->
              Alcotest.(check bool) ("span " ^ want ^ " present") true
                (List.mem want names))
            [
              "client.request";
              "queue.wait";
              "server.execute";
              "engine.wait";
              "statement";
              "compile";
              "eval";
              "lock.wait";
              "commit.fsync";
              "standby.apply";
            ];
          (* one trace id spans client, server, engine and standby *)
          let spans = Option.get (Span.find trace) in
          Alcotest.(check bool) "all spans carry the client's trace id" true
            (List.for_all (fun s -> s.Span.sp_trace = trace) spans);
          match Span.render trace with
          | Some tree ->
            Alcotest.(check bool) "rendered tree mentions commit.fsync" true
              (let has sub =
                 let n = String.length tree and m = String.length sub in
                 let rec at i =
                   i + m <= n && (String.sub tree i m = sub || at (i + 1))
                 in
                 at 0
               in
               has "commit.fsync" && has "standby.apply")
          | None -> Alcotest.fail "trace not renderable"))

(* ---- slow-statement log ------------------------------------------------ *)

let test_slow_log_threshold () =
  let file = Filename.temp_file "sedna_slow" ".jsonl" in
  Slow_log.clear ();
  Slow_log.set_threshold 0.;
  Slow_log.set_file (Some file);
  Fun.protect
    ~finally:(fun () ->
      Slow_log.set_threshold 1.0;
      Slow_log.set_file None;
      Slow_log.clear ();
      Sys.remove file)
    (fun () ->
      Test_util.with_db (fun db ->
          ignore (Test_util.load db "d" "<r><x/></r>");
          ignore (Test_util.exec db {|count(doc("d")//x)|}));
      let entries = Slow_log.dump () in
      Alcotest.(check bool) "threshold 0 records every statement" true
        (List.length entries >= 1);
      let e = List.hd (List.rev entries) in
      Alcotest.(check bool) "entry carries a trace id" true
        (String.length e.Slow_log.sl_trace > 0);
      Alcotest.(check bool) "entry has a span breakdown" true
        (e.Slow_log.sl_spans <> []);
      Alcotest.(check bool) "entry keeps the statement text" true
        (e.Slow_log.sl_text <> "");
      let ic = open_in file in
      let line = input_line ic in
      close_in ic;
      Alcotest.(check bool) "file sink got a JSON line" true
        (String.length line > 2 && line.[0] = '{');
      (* above the threshold nothing is recorded *)
      Slow_log.clear ();
      Slow_log.set_threshold 3600.;
      Test_util.with_db (fun db ->
          ignore (Test_util.load db "d" "<r/>");
          ignore (Test_util.exec db {|count(doc("d"))|}));
      Alcotest.(check int) "fast statements stay out" 0
        (List.length (Slow_log.dump ())))

(* ---- metrics endpoint -------------------------------------------------- *)

let http_get port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
          path
      in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let b = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec go () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes b chunk 0 n;
          go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      in
      go ();
      Buffer.contents b)

let split_response resp =
  let rec find i =
    if i + 4 > String.length resp then String.length resp
    else if String.sub resp i 4 = "\r\n\r\n" then i
    else find (i + 1)
  in
  let i = find 0 in
  ( String.sub resp 0 i,
    String.sub resp (min (i + 4) (String.length resp))
      (String.length resp - min (i + 4) (String.length resp)) )

let prom_line_ok line =
  line = ""
  || (String.length line > 1 && line.[0] = '#')
  ||
  match String.index_opt line ' ' with
  | None -> false
  | Some i ->
    let name = String.sub line 0 i in
    let value = String.sub line (i + 1) (String.length line - i - 1) in
    String.length name > 0
    && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
    && String.for_all
         (fun c ->
           match c with
           | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '{' | '}' | '"' | '='
           | '+' | '.' | '-' ->
             true
           | _ -> false)
         name
    && float_of_string_opt value <> None

let test_metrics_endpoint () =
  with_repl_server (fun ~db ~srv ~recv ->
      let c = Client.connect ~port:(Server.port srv) () in
      ignore (Client.open_db c "main");
      ignore (Client.execute c {|UPDATE insert <m/> into doc("d")/r|});
      Client.close c;
      let epoch = Wal.epoch (Database.wal db) in
      let pos = Wal.size (Database.wal db) in
      ignore (Recv.wait_caught_up ~timeout_s:10. recv ~epoch ~pos);
      let m =
        Mh.start
          ~gauges:
            [
              {
                Mh.g_name = "buffer.occupancy";
                g_help = "frames in use";
                g_read = (fun () -> Buffer_mgr.occupancy (Database.buffer db));
              };
            ]
          ~health:(fun () -> (true, "primary"))
          ~port:0 ()
      in
      Fun.protect
        ~finally:(fun () -> Mh.stop m)
        (fun () ->
          let head, body = split_response (http_get (Mh.port m) "/metrics") in
          Alcotest.(check bool) "/metrics answers 200" true
            (String.length head >= 15 && String.sub head 9 3 = "200");
          let lines = String.split_on_char '\n' body in
          List.iter
            (fun l ->
              if not (prom_line_ok l) then
                Alcotest.fail ("malformed exposition line: " ^ l))
            lines;
          let has sub =
            List.exists
              (fun l ->
                String.length l >= String.length sub
                && String.sub l 0 (String.length sub) = sub)
              lines
          in
          Alcotest.(check bool) "replication lag gauge exported" true
            (has "sedna_repl_lag_bytes ");
          Alcotest.(check bool) "standby apply counter exported" true
            (has "sedna_repl_txns_applied ");
          Alcotest.(check bool) "supplied gauge exported" true
            (has "sedna_buffer_occupancy ");
          Alcotest.(check bool) "lag gauge typed as gauge" true
            (has "# TYPE sedna_repl_lag_bytes gauge");
          let hhead, hbody = split_response (http_get (Mh.port m) "/health") in
          Alcotest.(check bool) "/health answers 200 ok primary" true
            (String.sub hhead 9 3 = "200"
            && String.length hbody >= 10
            && String.sub hbody 0 10 = "ok primary");
          let nhead, _ = split_response (http_get (Mh.port m) "/nope") in
          Alcotest.(check bool) "unknown path answers 404" true
            (String.sub nhead 9 3 = "404")))

let test_prom_name () =
  Alcotest.(check string) "dots and dashes sanitized" "sedna_wal_fsync_ms"
    (Mh.prom_name "wal.fsync-ms")

(* ---- deadline preempts a lock wait (satellite 3) ----------------------- *)

let test_deadline_preempts_lock_wait () =
  let dir = Test_util.fresh_dir () in
  let db = Database.create dir in
  Fun.protect
    ~finally:(fun () ->
      Deadline.clear ();
      Database.close db)
    (fun () ->
      ignore (Test_util.load db "d" "<r/>");
      let t1 = Database.begin_txn db in
      let t2 = Database.begin_txn db in
      Database.lock_exn db t1 ~doc:"d" ~mode:Lock_mgr.Exclusive;
      (* generous retries: without the deadline this wait would take far
         longer than the armed budget before giving up *)
      Deadline.set 0.002;
      let got =
        match
          Database.lock_exn ~retries:50 db t2 ~doc:"d"
            ~mode:Lock_mgr.Exclusive
        with
        | () -> "granted"
        | exception Error.Sedna_error (code, _) -> Error.code_name code
      in
      Deadline.clear ();
      Alcotest.(check string)
        "armed deadline fires inside the lock-wait loop" "SE-TIMEOUT" got;
      Database.abort db t2;
      Database.abort db t1)

let suite =
  [
    Alcotest.test_case "monotonic clock never goes backwards" `Quick
      test_monotonic;
    Alcotest.test_case "trace context wire codec" `Quick test_wire_codec;
    Alcotest.test_case "nested spans become a tree" `Quick test_span_tree_local;
    Alcotest.test_case "disabled tracing creates nothing" `Quick
      test_disabled_is_free;
    Alcotest.test_case "trace ring survives 4 concurrent writers" `Quick
      test_trace_ring_concurrent;
    Alcotest.test_case "one statement, one trace, spans from every layer"
      `Quick test_span_tree_over_tcp;
    Alcotest.test_case "slow-statement log honors its threshold" `Quick
      test_slow_log_threshold;
    Alcotest.test_case "metrics endpoint speaks Prometheus" `Quick
      test_metrics_endpoint;
    Alcotest.test_case "prometheus name sanitation" `Quick test_prom_name;
    Alcotest.test_case "deadline preempts a blocked lock wait" `Quick
      test_deadline_preempts_lock_wait;
  ]
