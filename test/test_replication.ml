(* WAL-shipping replication: streaming cursor, hot standby, promotion,
   client failover, and the repl.* fault sites. *)

open Sedna_util
open Sedna_core
open Sedna_db
module Sender = Sedna_replication.Repl_sender
module Recv = Sedna_replication.Repl_receiver
module Server = Sedna_server.Server
module Client = Sedna_server.Server_client

let tip db = (Wal.epoch (Database.wal db), Wal.size (Database.wal db))

let insert db text =
  ignore
    (Test_util.exec db
       (Printf.sprintf {|UPDATE insert <e>%s</e> into doc("d")/r|} text))

let count db = Test_util.exec db {|count(doc("d")/r/e)|}

(* a primary with doc "d" = <r/>, its sender, and a standby receiver
   pulling from it; the callback gets all the moving parts *)
let with_pair ?(port = 0) ?max_batch f =
  Fault.disarm_all ();
  let pdir = Test_util.fresh_dir () in
  let sdir = pdir ^ "-standby" in
  let gov_p = Governor.create () in
  let gov_s = Governor.create () in
  let db = Governor.create_database gov_p ~name:"db" ~dir:pdir in
  ignore (Test_util.load db "d" "<r/>");
  let sender = Sender.start ~port ~gov:gov_p db in
  let recv =
    Recv.start ~poll_s:0.005 ~heartbeat_timeout_s:1.0 ?max_batch ~gov:gov_s
      ~name:"db" ~dir:sdir ~host:"127.0.0.1" ~port:(Sender.port sender) ()
  in
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm_all ();
      Recv.stop recv;
      Sender.stop sender;
      (try Governor.shutdown gov_s with _ -> ());
      try Governor.shutdown gov_p with _ -> ())
    (fun () -> f ~gov_p ~gov_s ~db ~sender ~recv)

let caught_up ?(timeout_s = 10.) db recv =
  let epoch, pos = tip db in
  Alcotest.(check bool) "standby caught up" true
    (Recv.wait_caught_up ~timeout_s recv ~epoch ~pos)

let standby_db recv =
  match Recv.database recv with
  | Some db -> db
  | None -> Alcotest.fail "standby has no database"

(* ---- WAL streaming cursor ------------------------------------------- *)

let test_wal_epoch_bumps () =
  let dir = Test_util.fresh_dir () in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "wal.sdb" in
  let w = Wal.create path in
  let e0 = Wal.epoch w in
  Alcotest.(check bool) "epoch positive" true (e0 > 0);
  Alcotest.(check int) "sidecar agrees" e0 (Wal.read_epoch path);
  Wal.append w (Wal.Begin 1);
  Wal.sync w;
  Wal.reset w;
  Alcotest.(check int) "reset bumps" (e0 + 1) (Wal.epoch w);
  Alcotest.(check int) "sidecar follows" (e0 + 1) (Wal.read_epoch path);
  Wal.close w;
  let w2 = Wal.open_existing path in
  Alcotest.(check int) "reopen keeps epoch" (e0 + 1) (Wal.epoch w2);
  Wal.close w2

let test_wal_stream_cursor () =
  let dir = Test_util.fresh_dir () in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "wal.sdb" in
  let w = Wal.create path in
  Wal.append w (Wal.Begin 7);
  Wal.append w (Wal.Image (7, 3, Bytes.make 64 'p'));
  Wal.append w (Wal.Commit (7, None));
  Wal.sync w;
  (* stream everything in tiny batches, resuming at returned positions *)
  let rec drain pos acc =
    let frames, n, pos' = Wal.stream_from path ~pos ~max_bytes:1 in
    if n = 0 then (acc, pos)
    else begin
      Alcotest.(check int) "tiny budget ships one frame" 1 n;
      drain pos' (acc @ Wal.records_of_frames frames)
    end
  in
  let records, end_pos = drain 0 [] in
  Alcotest.(check int) "three records" 3 (List.length records);
  Alcotest.(check int) "cursor at end" (Wal.size w) end_pos;
  (* read_from at a mid-stream boundary sees only the tail *)
  let _, first_end = List.hd (Wal.read_from path 0) in
  Alcotest.(check int) "tail from second frame" 2
    (List.length (Wal.read_from path first_end));
  (* appending the raw frames to a second log reproduces the records *)
  let path2 = Filename.concat dir "wal2.sdb" in
  let w2 = Wal.create path2 in
  let frames, _, _ = Wal.stream_from path ~pos:0 ~max_bytes:max_int in
  Wal.append_raw w2 frames;
  Wal.sync w2;
  Alcotest.(check int) "replica log has the records" 3
    (List.length (Wal.read_all path2));
  Wal.close w;
  Wal.close w2

(* ---- shipping and continuous apply ----------------------------------- *)

let test_basic_ship () =
  with_pair (fun ~gov_p:_ ~gov_s:_ ~db ~sender:_ ~recv ->
      for i = 1 to 5 do
        insert db (string_of_int i)
      done;
      caught_up db recv;
      Alcotest.(check string) "standby sees all inserts" "5"
        (Test_util.exec (standby_db recv) {|count(doc("d")/r/e)|});
      Alcotest.(check string) "primary agrees" "5" (count db))

let test_cursor_resume_across_sender_restart () =
  (* pin the replication port so a restarted sender is reachable at the
     address the receiver keeps dialing *)
  let port =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
    let p =
      match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> 0
    in
    Unix.close fd;
    p
  in
  with_pair ~port (fun ~gov_p ~gov_s:_ ~db ~sender ~recv ->
      insert db "before";
      caught_up db recv;
      let reseeds = Counters.get Counters.repl_reseeds in
      Sender.stop sender;
      insert db "while-down";
      let sender2 = Sender.start ~port ~gov:gov_p db in
      Fun.protect
        ~finally:(fun () -> Sender.stop sender2)
        (fun () ->
          insert db "after";
          caught_up db recv;
          Alcotest.(check string) "nothing lost across the outage" "3"
            (Test_util.exec (standby_db recv) {|count(doc("d")/r/e)|});
          (* same epoch, valid position: resume must NOT have re-seeded *)
          Alcotest.(check int) "resumed from cursor, no re-seed" reseeds
            (Counters.get Counters.repl_reseeds)))

let test_epoch_mismatch_forces_reseed () =
  with_pair (fun ~gov_p:_ ~gov_s:_ ~db ~sender:_ ~recv ->
      insert db "one";
      caught_up db recv;
      let reseeds = Counters.get Counters.repl_reseeds in
      (* checkpoint truncates the primary WAL and bumps its epoch: the
         standby's position is now meaningless *)
      Database.checkpoint db;
      insert db "two";
      caught_up db recv;
      Alcotest.(check bool) "re-seeded after epoch bump" true
        (Counters.get Counters.repl_reseeds > reseeds);
      Alcotest.(check string) "state correct after re-seed" "2"
        (Test_util.exec (standby_db recv) {|count(doc("d")/r/e)|}))

let test_standby_rejects_writes () =
  with_pair (fun ~gov_p:_ ~gov_s:_ ~db ~sender:_ ~recv ->
      insert db "x";
      caught_up db recv;
      let sdb = standby_db recv in
      (* read-only transactions are welcome *)
      let s = Session.connect sdb in
      Session.begin_txn ~read_only:true s;
      Alcotest.(check string) "read-only txn reads" "1"
        (Session.execute_string s {|count(doc("d")/r/e)|});
      Session.commit s;
      (* writes are refused with SE-READ-ONLY *)
      (match
         Session.execute (Session.connect sdb)
           {|UPDATE insert <e>nope</e> into doc("d")/r|}
       with
       | _ -> Alcotest.fail "standby accepted a write"
       | exception Error.Sedna_error (code, _) ->
         Alcotest.(check string) "SE-READ-ONLY" "SE-READ-ONLY"
           (Error.code_name code)))

let test_snapshot_consistent_during_apply () =
  with_pair (fun ~gov_p:_ ~gov_s:_ ~db ~sender:_ ~recv ->
      insert db "a";
      caught_up db recv;
      let sdb = standby_db recv in
      let s = Session.connect sdb in
      Session.begin_txn ~read_only:true s;
      Alcotest.(check string) "snapshot sees 1" "1"
        (Session.execute_string s {|count(doc("d")/r/e)|});
      (* new transactions arrive and are applied under the reader *)
      for i = 2 to 6 do
        insert db (string_of_int i)
      done;
      caught_up db recv;
      Alcotest.(check string) "open snapshot unmoved" "1"
        (Session.execute_string s {|count(doc("d")/r/e)|});
      Session.commit s;
      let s2 = Session.connect sdb in
      Alcotest.(check string) "new session sees the applied txns" "6"
        (Session.execute_string s2 {|count(doc("d")/r/e)|}))

(* ---- promotion -------------------------------------------------------- *)

let test_promotion_idempotent () =
  with_pair (fun ~gov_p:_ ~gov_s:_ ~db ~sender:_ ~recv ->
      insert db "x";
      caught_up db recv;
      let first = Recv.promote recv in
      Alcotest.(check bool) "reports promotion" true
        (String.length first > 0);
      Alcotest.(check string) "second promote is a no-op" "already promoted"
        (Recv.promote recv);
      (* the promoted database accepts writes *)
      let sdb = standby_db recv in
      ignore
        (Session.execute (Session.connect sdb)
           {|UPDATE insert <e>post-promote</e> into doc("d")/r|});
      Alcotest.(check string) "write applied" "2"
        (Test_util.exec sdb {|count(doc("d")/r/e)|});
      (match Integrity.check_document (Database.store sdb) "d" with
       | [] -> ()
       | es -> Alcotest.fail (String.concat "; " es)))

(* ---- heartbeat timeout ------------------------------------------------ *)

let test_heartbeat_timeout_detection () =
  (* a listener that accepts and then stays silent: the receiver must
     detect the dead air and keep cycling instead of hanging *)
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen fd 4;
  let port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> 0
  in
  let accepted = ref [] in
  let stop = ref false in
  let th =
    Thread.create
      (fun () ->
        while not !stop do
          match Unix.accept fd with
          | c, _ -> accepted := c :: !accepted
          | exception _ -> ()
        done)
      ()
  in
  let gov = Governor.create () in
  let recv =
    Recv.start ~heartbeat_timeout_s:0.2 ~gov ~name:"db"
      ~dir:(Test_util.fresh_dir () ^ "-hb") ~host:"127.0.0.1" ~port ()
  in
  (* give it time for several connect/timeout cycles *)
  Unix.sleepf 1.0;
  Alcotest.(check bool) "multiple timed-out attempts" true
    (List.length !accepted >= 2);
  Alcotest.(check bool) "never seeded off the silent peer" true
    (Recv.database recv = None);
  Recv.stop recv;
  stop := true;
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ());
  (try
     let poke = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
     (try Unix.connect poke (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
      with _ -> ());
     Unix.close poke
   with _ -> ());
  Thread.join th;
  (try Unix.close fd with _ -> ());
  List.iter (fun c -> try Unix.close c with _ -> ()) !accepted

(* ---- fault injection --------------------------------------------------- *)

let test_fault_sites_cost_lag_not_loss () =
  List.iter
    (fun spec ->
      (* one frame per batch, so the armed site gets many distinct hits *)
      with_pair ~max_batch:1 (fun ~gov_p:_ ~gov_s:_ ~db ~sender:_ ~recv ->
          insert db "pre";
          caught_up db recv;
          let injected = Counters.get Counters.fault_injected in
          Fault.arm_spec spec;
          for i = 1 to 6 do
            insert db (string_of_int i)
          done;
          caught_up ~timeout_s:15. db recv;
          Fault.disarm_all ();
          Alcotest.(check bool) (spec ^ " fired") true
            (Counters.get Counters.fault_injected > injected);
          Alcotest.(check string) (spec ^ ": no loss") "7"
            (Test_util.exec (standby_db recv) {|count(doc("d")/r/e)|})))
    [ "repl.send:fail@2"; "repl.apply:crash@2" ]

let test_heartbeat_fault_fires () =
  with_pair (fun ~gov_p:_ ~gov_s:_ ~db ~sender:_ ~recv ->
      insert db "x";
      caught_up db recv;
      let injected = Counters.get Counters.fault_injected in
      Fault.arm_spec "repl.heartbeat:fail@1";
      (* caught up: the next pulls are heartbeats; the armed fault kills
         the connection, the standby reconnects and stays available *)
      let deadline = Unix.gettimeofday () +. 10. in
      while
        Counters.get Counters.fault_injected <= injected
        && Unix.gettimeofday () < deadline
      do
        Unix.sleepf 0.01
      done;
      Fault.disarm_all ();
      Alcotest.(check bool) "heartbeat fault fired" true
        (Counters.get Counters.fault_injected > injected);
      insert db "y";
      caught_up db recv;
      Alcotest.(check string) "stream recovered after the drop" "2"
        (Test_util.exec (standby_db recv) {|count(doc("d")/r/e)|}))

(* ---- client failover over real servers -------------------------------- *)

let test_client_failover () =
  Fault.disarm_all ();
  let pdir = Test_util.fresh_dir () in
  let sdir = pdir ^ "-standby" in
  let gov_p = Governor.create () in
  let gov_s = Governor.create () in
  let db = Governor.create_database gov_p ~name:"db" ~dir:pdir in
  ignore (Test_util.load db "d" "<r/>");
  let srv_p = Server.start gov_p in
  let sender = Sender.start ~gov:gov_p db in
  let recv =
    Recv.start ~poll_s:0.005 ~gov:gov_s ~name:"db" ~dir:sdir ~host:"127.0.0.1"
      ~port:(Sender.port sender) ()
  in
  let srv_s = Server.start ~on_promote:(fun () -> Recv.promote recv) gov_s in
  let endpoints =
    [ ("127.0.0.1", Server.port srv_p); ("127.0.0.1", Server.port srv_s) ]
  in
  let c = Sedna_replication.Repl_client.connect ~retries:3 endpoints in
  ignore (Client.open_db c "db");
  ignore (Client.execute c {|UPDATE insert <e>one</e> into doc("d")/r|});
  caught_up db recv;
  (* a second client sits mid-transaction when the primary dies *)
  let writer = Sedna_replication.Repl_client.connect ~retries:3 endpoints in
  ignore (Client.open_db writer "db");
  ignore (Client.execute writer "BEGIN");
  ignore (Client.execute writer {|UPDATE insert <e>doomed</e> into doc("d")/r|});
  Server.kill srv_p;
  Sender.stop sender;
  Database.crash db;
  (* the idle client's next read silently fails over to the standby *)
  Alcotest.(check string) "read failed over" "1"
    (Client.execute_string c {|count(doc("d")/r/e)|});
  Alcotest.(check int) "now talking to the standby" (Server.port srv_s)
    (snd (Client.endpoint c));
  (* the mid-transaction writer is told the truth *)
  (match Client.execute writer "COMMIT" with
   | _ -> Alcotest.fail "in-flight write survived a dead primary"
   | exception Client.Remote_error (code, _) ->
     Alcotest.(check string) "SE-FAILOVER" "SE-FAILOVER" code);
  (* promotion over the wire, then writes succeed on the survivor *)
  let msg =
    Sedna_replication.Repl_client.promote ~host:"127.0.0.1"
      ~port:(Server.port srv_s) ~database:"db"
  in
  Alcotest.(check bool) "promote reports epoch" true
    (String.length msg > 0);
  ignore (Client.execute writer "BEGIN");
  ignore (Client.execute writer {|UPDATE insert <e>retry</e> into doc("d")/r|});
  ignore (Client.execute writer "COMMIT");
  Alcotest.(check string) "write landed on the new primary" "2"
    (Client.execute_string c {|count(doc("d")/r/e)|});
  Client.close c;
  Client.close writer;
  Server.stop srv_s;
  Recv.stop recv;
  (try Governor.shutdown gov_p with _ -> ())

let suite =
  [
    Alcotest.test_case "wal epoch bumps on reset" `Quick test_wal_epoch_bumps;
    Alcotest.test_case "wal streaming cursor" `Quick test_wal_stream_cursor;
    Alcotest.test_case "ship and apply" `Quick test_basic_ship;
    Alcotest.test_case "cursor resumes across sender restart" `Quick
      test_cursor_resume_across_sender_restart;
    Alcotest.test_case "epoch mismatch forces re-seed" `Quick
      test_epoch_mismatch_forces_reseed;
    Alcotest.test_case "standby rejects writes" `Quick
      test_standby_rejects_writes;
    Alcotest.test_case "snapshot consistent during apply" `Quick
      test_snapshot_consistent_during_apply;
    Alcotest.test_case "promotion is idempotent" `Quick
      test_promotion_idempotent;
    Alcotest.test_case "heartbeat timeout detection" `Quick
      test_heartbeat_timeout_detection;
    Alcotest.test_case "repl faults cost lag, not loss" `Quick
      test_fault_sites_cost_lag_not_loss;
    Alcotest.test_case "heartbeat fault fires and recovers" `Quick
      test_heartbeat_fault_fires;
    Alcotest.test_case "client failover + promote over the wire" `Quick
      test_client_failover;
  ]
