(* Network chaos layer and split-brain fencing: the Netfault spec
   grammar and its seeded triggers, the unified Retry backoff, torn
   mid-frame connections on both the statement and replication ports,
   cluster-epoch fencing at the database and over the wire, the
   health endpoint's fenced/draining refusal, and one full Chaoskit
   drill (partition + mid-run promotion). *)

open Sedna_util
open Sedna_core
module Server = Sedna_server.Server
module Client = Sedna_server.Server_client
module Wire = Sedna_server.Wire
module Mh = Sedna_server.Metrics_http
module Sender = Sedna_replication.Repl_sender
module Recv = Sedna_replication.Repl_receiver
module G = Sedna_db.Governor

let clean f =
  Fault.disarm_all ();
  Netfault.disarm_all ();
  Fun.protect ~finally:(fun () -> Netfault.disarm_all ()) f

(* ---- spec grammar ----------------------------------------------------- *)

let test_netfault_grammar () =
  clean (fun () ->
      let p = Netfault.parse_policy "drop@3" in
      Alcotest.(check string) "drop@3" "drop@3" (Netfault.policy_to_string p);
      let p = Netfault.parse_policy "delay=50@2+" in
      (match p.Netfault.action with
       | Netfault.Delay s ->
         Alcotest.(check bool) "50ms" true (abs_float (s -. 0.05) < 1e-9)
       | _ -> Alcotest.fail "expected Delay");
      let p = Netfault.parse_policy "torn%0.1/7" in
      (match p.Netfault.trigger with
       | Fault.Prob (q, seed) ->
         Alcotest.(check bool) "prob and seed" true (q = 0.1 && seed = 7)
       | _ -> Alcotest.fail "expected Prob");
      ignore (Netfault.parse_policy "dup");
      Alcotest.check_raises "bad action"
        (Invalid_argument "Netfault.parse_policy: bad action in \"fry@1\"")
        (fun () -> ignore (Netfault.parse_policy "fry@1"));
      (* partitions through arm_spec *)
      Netfault.arm_spec "part:primary->standby";
      Alcotest.(check (list (pair string string))) "one-way" [ ("primary", "standby") ]
        (Netfault.partitions ());
      Netfault.arm_spec "part:client<->server";
      Alcotest.(check int) "two-way adds both" 3
        (List.length (Netfault.partitions ()));
      Netfault.heal ~from_role:"primary" ~to_role:"standby" ();
      Alcotest.(check int) "healed one" 2 (List.length (Netfault.partitions ()));
      Netfault.disarm_all ();
      Alcotest.(check int) "disarm_all heals" 0
        (List.length (Netfault.partitions ()));
      (* armed sites show up in the report *)
      Netfault.arm_spec "net.send:drop@2";
      let armed =
        List.filter_map
          (fun (n, _, p) -> Option.map (fun p -> (n, p)) p)
          (Netfault.report ())
      in
      Alcotest.(check (list (pair string string))) "report shows the policy"
        [ ("net.send", "drop@2") ] armed)

let test_trigger_determinism () =
  (* the same seeded probability trigger replays the same decisions *)
  let fire_seq () =
    let t = Fault.Trigger.parse "%0.4/123" in
    let st = Fault.Trigger.state t in
    List.init 40 (fun _ -> Fault.Trigger.fire st t)
  in
  Alcotest.(check (list bool)) "seeded schedule replays" (fire_seq ()) (fire_seq ());
  let fired = List.filter (fun b -> b) (fire_seq ()) in
  Alcotest.(check bool) "some fire, some don't" true
    (List.length fired > 0 && List.length fired < 40)

(* ---- unified retry ---------------------------------------------------- *)

let test_retry_bounds () =
  let p = Retry.policy ~max_attempts:6 ~base_s:0.01 ~cap_s:0.08 ~seed:5 "t" in
  let r = Retry.start p in
  for _ = 1 to 20 do
    let s = Retry.next_sleep r in
    Alcotest.(check bool)
      (Printf.sprintf "sleep %g within [base, cap]" s)
      true
      (s >= 0.01 -. 1e-9 && s <= 0.08 +. 1e-9)
  done;
  (* seeded jitter replays *)
  let draws p = let r = Retry.start p in List.init 8 (fun _ -> Retry.next_sleep r) in
  Alcotest.(check (list (float 1e-12))) "seeded draws replay" (draws p) (draws p);
  (* pause burns the budget: max_attempts bounds the total attempts *)
  let r = Retry.start (Retry.policy ~max_attempts:3 ~base_s:0.001 ~cap_s:0.002 "t2") in
  Alcotest.(check bool) "first pause allowed" true (Retry.pause r);
  Alcotest.(check bool) "second pause allowed" true (Retry.pause r);
  Alcotest.(check bool) "third pause refused (budget spent)" false (Retry.pause r);
  Retry.reset r;
  Alcotest.(check bool) "reset restores the budget" true (Retry.pause r)

let test_retry_run () =
  let calls = ref 0 in
  let v =
    Retry.run
      (Retry.policy ~max_attempts:5 ~base_s:0.001 ~cap_s:0.002 "t3")
      ~retry_on:(function Failure _ -> true | _ -> false)
      (fun () ->
        incr calls;
        if !calls < 3 then failwith "flaky" else 42)
  in
  Alcotest.(check int) "succeeded on third call" 42 v;
  Alcotest.(check int) "three calls" 3 !calls;
  (* non-matching exceptions propagate immediately *)
  let calls = ref 0 in
  (match
     Retry.run
       (Retry.policy ~max_attempts:5 ~base_s:0.001 "t4")
       ~retry_on:(function Failure _ -> true | _ -> false)
       (fun () ->
         incr calls;
         raise Exit)
   with
   | _ -> Alcotest.fail "Exit should propagate"
   | exception Exit -> Alcotest.(check int) "no retry on Exit" 1 !calls)

(* ---- torn mid-frame: statement port ----------------------------------- *)

let with_server f =
  let dir = Test_util.fresh_dir () in
  let g = G.create () in
  let db = G.create_database g ~name:"main" ~dir in
  ignore (Test_util.load db "d" "<r/>");
  let srv = Server.start g in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f g srv db)

let poll ?(timeout_s = 5.) pred =
  let d = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () > d then false
    else begin
      Unix.sleepf 0.01;
      go ()
    end
  in
  go ()

let test_torn_statement_port () =
  clean (fun () ->
      with_server (fun g srv _db ->
          let c = Client.connect ~port:(Server.port srv) () in
          Fun.protect
            ~finally:(fun () -> try Client.close c with _ -> ())
            (fun () ->
              ignore (Client.open_db c "main");
              Alcotest.(check int) "one session" 1 (G.session_count g);
              Trace.clear ();
              (* the very next frame sent anywhere is torn: that is this
                 client's write request *)
              Netfault.arm_spec "net.send:torn@1";
              (match
                 Client.execute c {|UPDATE insert <e/> into doc("d")/r|}
               with
               | _ -> Alcotest.fail "torn write must not be acked"
               | exception Client.Remote_error ("SE-FAILOVER", _) -> ()
               | exception e ->
                 Alcotest.fail
                   ("expected SE-FAILOVER, got " ^ Printexc.to_string e));
              (* the server noticed the mid-frame EOF, closed the
                 connection and freed the session slot (the client then
                 reconnected and re-opened, so the count returns to 1) *)
              Alcotest.(check bool) "server emitted conn.close" true
                (poll (fun () ->
                     let contains hay needle =
                       let nh = String.length hay and nn = String.length needle in
                       let rec go i =
                         i + nn <= nh
                         && (String.sub hay i nn = needle || go (i + 1))
                       in
                       go 0
                     in
                     contains (Trace.to_json_lines ()) "conn.close"));
              Alcotest.(check bool) "session slot recycled" true
                (poll (fun () -> G.session_count g = 1));
              (* the reconnected session still works *)
              Alcotest.(check string) "statement after reconnect" "ok"
                (match Client.execute c {|UPDATE insert <e/> into doc("d")/r|} with
                 | Sedna_db.Session.Updated _ -> "ok"
                 | _ -> "unexpected"))))

(* ---- torn mid-frame: replication port --------------------------------- *)

let test_torn_replication_port () =
  clean (fun () ->
      let pdir = Test_util.fresh_dir () in
      let sdir = pdir ^ "-standby" in
      let gov_p = G.create () in
      let gov_s = G.create () in
      let db = G.create_database gov_p ~name:"db" ~dir:pdir in
      ignore (Test_util.load db "d" "<r/>");
      let sender = Sender.start ~gov:gov_p db in
      let recv =
        Recv.start ~poll_s:0.005 ~heartbeat_timeout_s:0.5 ~gov:gov_s ~name:"db"
          ~dir:sdir ~host:"127.0.0.1" ~port:(Sender.port sender) ()
      in
      Fun.protect
        ~finally:(fun () ->
          Netfault.disarm_all ();
          Recv.stop recv;
          Sender.stop sender;
          (try G.shutdown gov_s with _ -> ());
          try G.shutdown gov_p with _ -> ())
        (fun () ->
          let tip () = (Wal.epoch (Database.wal db), Wal.size (Database.wal db)) in
          let insert text =
            ignore
              (Test_util.exec db
                 (Printf.sprintf {|UPDATE insert <e>%s</e> into doc("d")/r|} text))
          in
          insert "before";
          let e, p = tip () in
          Alcotest.(check bool) "standby caught up" true
            (Recv.wait_caught_up recv ~epoch:e ~pos:p);
          let injected0 = Counters.get Counters.net_injected in
          (* tear the next replication frame (the stream is the only
             traffic now), costing the connection mid-frame; the
             receiver must reconnect and resume from its acked cursor *)
          Netfault.arm_spec "net.send:torn@1";
          Alcotest.(check bool) "the torn frame fired" true
            (poll (fun () -> Counters.get Counters.net_injected > injected0));
          insert "after";
          let e, p = tip () in
          Alcotest.(check bool) "standby recovered and caught up" true
            (Recv.wait_caught_up ~timeout_s:15. recv ~epoch:e ~pos:p);
          match Recv.database recv with
          | None -> Alcotest.fail "standby lost its database"
          | Some sdb ->
            Alcotest.(check string) "nothing lost across the torn frame" "2"
              (Test_util.exec sdb {|count(doc("d")/r/e)|})))

(* ---- fencing ----------------------------------------------------------- *)

let test_fencing_local () =
  let dir = Test_util.fresh_dir () in
  let db = Database.create dir in
  Alcotest.(check int) "fresh cluster epoch" 0 (Database.cluster_epoch db);
  Alcotest.(check bool) "not fenced" false (Database.is_fenced db);
  Database.set_cluster_epoch db 5;
  Alcotest.(check int) "epoch adopted" 5 (Database.cluster_epoch db);
  Database.set_cluster_epoch db 3;
  Alcotest.(check int) "epoch is monotonic" 5 (Database.cluster_epoch db);
  (* an equal or lower epoch is old news — no fence *)
  Database.observe_epoch db 5;
  Alcotest.(check bool) "own epoch does not fence" false (Database.is_fenced db);
  let demotions0 = Counters.get Counters.fence_demotions in
  Database.observe_epoch db 9;
  Alcotest.(check bool) "higher epoch fences a primary" true
    (Database.is_fenced db);
  Alcotest.(check int) "epoch adopted on fence" 9 (Database.cluster_epoch db);
  Alcotest.(check int) "demotion counted" (demotions0 + 1)
    (Counters.get Counters.fence_demotions);
  (* writes refused, reads welcome *)
  (match Database.begin_txn db with
   | _ -> Alcotest.fail "fenced node accepted a write transaction"
   | exception Error.Sedna_error (code, _) ->
     Alcotest.(check string) "SE-FENCED" "SE-FENCED" (Error.code_name code));
  let txn = Database.begin_txn ~read_only:true db in
  Database.commit db txn;
  Database.unfence db;
  let txn = Database.begin_txn db in
  Database.abort db txn;
  (* the epoch survives a restart via the sidecar *)
  Database.close db;
  let db2 = Database.open_existing dir in
  Alcotest.(check int) "cluster epoch persisted" 9 (Database.cluster_epoch db2);
  Alcotest.(check bool) "fence itself is not persisted" false
    (Database.is_fenced db2);
  Database.close db2

let test_fence_blocks_open_transaction_commit () =
  let dir = Test_util.fresh_dir () in
  let db = Database.create dir in
  let rejected0 = Counters.get Counters.fence_rejected_writes in
  let txn = Database.begin_txn db in
  (* the fence lands while the transaction is open: its commit must be
     refused — nothing may be acked past the fence point *)
  Database.observe_epoch db 4;
  (match Database.commit db txn with
   | () -> Alcotest.fail "commit crossed the fence"
   | exception Error.Sedna_error (code, _) ->
     Alcotest.(check string) "SE-FENCED at commit" "SE-FENCED"
       (Error.code_name code));
  Alcotest.(check bool) "refusal counted" true
    (Counters.get Counters.fence_rejected_writes > rejected0);
  Database.abort db txn;
  Database.close db

let test_fence_gossip_over_wire () =
  clean (fun () ->
      with_server (fun _g srv db ->
          let c = Client.connect ~port:(Server.port srv) () in
          Fun.protect
            ~finally:(fun () -> try Client.close c with _ -> ())
            (fun () ->
              ignore (Client.open_db c "main");
              ignore (Client.execute c {|UPDATE insert <e/> into doc("d")/r|});
              (* a request carrying a higher cluster epoch in its 'E'
                 header fences the node it reaches *)
              let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
              Fun.protect
                ~finally:(fun () -> try Unix.close fd with _ -> ())
                (fun () ->
                  Unix.connect fd
                    (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port srv));
                  Wire.write_request fd (Wire.Open "main");
                  ignore (Wire.read_response fd);
                  Wire.write_request ~epoch:3 fd (Wire.Execute "1");
                  ignore (Wire.read_response fd));
              Alcotest.(check bool) "gossip fenced the node" true
                (poll (fun () -> Database.is_fenced db));
              Alcotest.(check int) "epoch adopted" 3 (Database.cluster_epoch db);
              (* the open client's next write is refused with SE-FENCED
                 (single endpoint, so no failover target exists) *)
              (match Client.execute c {|UPDATE insert <e/> into doc("d")/r|} with
               | _ -> Alcotest.fail "fenced server acked a write"
               | exception Client.Remote_error ("SE-FENCED", _) -> ()
               | exception e ->
                 Alcotest.fail ("expected SE-FENCED, got " ^ Printexc.to_string e));
              (* reads still served *)
              Alcotest.(check bool) "reads survive the fence" true
                (match Client.execute c {|count(doc("d")/r/e)|} with
                 | Sedna_db.Session.Items _ -> true
                 | _ -> false);
              Database.unfence db)))

(* ---- health endpoint --------------------------------------------------- *)

let http_get port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
          path
      in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let b = Buffer.create 1024 in
      let chunk = Bytes.create 1024 in
      let rec go () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes b chunk 0 n;
          go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      in
      go ();
      Buffer.contents b)

let status resp = if String.length resp >= 12 then String.sub resp 9 3 else "?"

let test_health_fenced_503 () =
  let role = ref (true, "primary") in
  let m = Mh.start ~health:(fun () -> !role) ~port:0 () in
  Fun.protect
    ~finally:(fun () -> Mh.stop m)
    (fun () ->
      Alcotest.(check string) "primary is ready" "200"
        (status (http_get (Mh.port m) "/health"));
      role := (true, "standby");
      Alcotest.(check string) "standby is ready" "200"
        (status (http_get (Mh.port m) "/health"));
      (* fenced and draining are never ready, even if the embedder's
         closure claims otherwise *)
      role := (true, "fenced");
      Alcotest.(check string) "fenced forces 503" "503"
        (status (http_get (Mh.port m) "/health"));
      role := (true, "draining");
      Alcotest.(check string) "draining forces 503" "503"
        (status (http_get (Mh.port m) "/health"));
      role := (false, "draining");
      Alcotest.(check string) "draining stays 503" "503"
        (status (http_get (Mh.port m) "/health"));
      (* the cluster epoch gauge is always in the exposition *)
      let body = http_get (Mh.port m) "/metrics" in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "cluster epoch exported" true
        (contains body "sedna_cluster_epoch"))

(* ---- one full chaos drill --------------------------------------------- *)

let test_chaos_partition_drill () =
  clean (fun () ->
      let dir =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "sedna-netchaos-%d" (Unix.getpid ()))
      in
      let o =
        Sedna_replication.Chaoskit.run_spec ~clients:2 ~ops:8 ~seed:11 ~dir
          "partition"
      in
      if not (Sedna_replication.Chaoskit.ok o) then
        Alcotest.fail (Sedna_replication.Chaoskit.render o);
      Alcotest.(check bool) "acked some work" true (o.Sedna_replication.Chaoskit.acked > 0);
      Alcotest.(check bool) "failed over to the promoted standby" true
        (o.Sedna_replication.Chaoskit.new_primary_acked > 0))

let suite =
  [
    Alcotest.test_case "netfault grammar" `Quick test_netfault_grammar;
    Alcotest.test_case "seeded trigger determinism" `Quick test_trigger_determinism;
    Alcotest.test_case "retry backoff bounds" `Quick test_retry_bounds;
    Alcotest.test_case "retry run helper" `Quick test_retry_run;
    Alcotest.test_case "torn frame on statement port" `Quick test_torn_statement_port;
    Alcotest.test_case "torn frame on replication port" `Quick test_torn_replication_port;
    Alcotest.test_case "fencing: local refusals" `Quick test_fencing_local;
    Alcotest.test_case "fencing: open txn cannot commit" `Quick
      test_fence_blocks_open_transaction_commit;
    Alcotest.test_case "fencing: epoch gossip over the wire" `Quick
      test_fence_gossip_over_wire;
    Alcotest.test_case "health: fenced and draining are 503" `Quick
      test_health_fenced_503;
    Alcotest.test_case "chaos drill: partition + promotion" `Slow
      test_chaos_partition_drill;
  ]
