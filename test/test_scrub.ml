(* Self-healing storage: the online scrubber's repair paths (pool /
   WAL after-image / standby fetch), its no-false-positive guarantee
   against concurrent writers, checksum adoption under concurrent
   readers, the enospc fault action, degraded-mode semantics, the
   watchdog's hysteresis, and the Page_request/Page_reply wire codec. *)

open Sedna_util
open Sedna_core
module G = Sedna_db.Governor
module Session = Sedna_db.Session
module Wire = Sedna_server.Wire

(* ---- helpers ---------------------------------------------------------- *)

let mk_db ?(frames = 32) dir =
  let db = Database.create ~buffer_frames:frames dir in
  ignore
    (Database.with_txn db (fun txn st ->
         Database.lock_exn db txn ~doc:"d" ~mode:Lock_mgr.Exclusive;
         Loader.load_string st ~doc_name:"d" "<d/>"));
  db

let insert db i =
  let s = Session.connect db in
  ignore
    (Session.execute s
       (Printf.sprintf {|UPDATE insert <e i="%d">%s</e> into doc("d")/d|} i
          (String.make 300 'x')))

let count_entries db =
  let s = Session.connect db in
  Session.execute_string s {|count(doc("d")/d/e)|}

(* XOR-flip one byte of a page's on-disk image behind the pool's back *)
let flip db pid =
  let fs = Buffer_mgr.store (Database.buffer db) in
  let fd = Unix.openfile (File_store.path fs) [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let off = (pid * Page.page_size) + 128 in
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      let b = Bytes.create 1 in
      ignore (Unix.read fd b 0 1);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      ignore (Unix.write fd b 0 1))

let find_page db pred =
  let fs = Buffer_mgr.store (Database.buffer db) in
  let n = File_store.page_count fs in
  let rec go pid =
    if pid >= n then None else if pred pid then Some pid else go (pid + 1)
  in
  go 0

let committed_wal_pids db =
  let tbl = Hashtbl.create 32 and committed = Hashtbl.create 32 in
  let records =
    Wal.read_all (Filename.concat (Database.directory db) "wal.sdb")
  in
  List.iter
    (function
      | Wal.Commit (t, _) -> Hashtbl.replace committed t true
      | Wal.Abort t -> Hashtbl.remove committed t
      | _ -> ())
    records;
  List.iter
    (function
      | Wal.Image (t, pid, _) when Hashtbl.mem committed t ->
        Hashtbl.replace tbl pid true
      | _ -> ())
    records;
  tbl

let verify db pid =
  File_store.verify_page (Buffer_mgr.store (Database.buffer db)) pid

(* ---- enospc fault action + errno classifier --------------------------- *)

let test_enospc_policy () =
  let p = Fault.parse_policy "enospc@1" in
  (* @1 is the default trigger, so the canonical form drops it *)
  Alcotest.(check string) "canonical form" "enospc" (Fault.policy_to_string p);
  Alcotest.(check string) "roundtrip" "enospc@2"
    (Fault.policy_to_string (Fault.parse_policy "enospc@2"));
  let s = Fault.site "test.enospc_suite" in
  Fault.with_armed "test.enospc_suite" p (fun () ->
      (match Fault.hit s with
       | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> ()
       | _ -> Alcotest.fail "armed enospc policy did not raise ENOSPC");
      (* @1 self-disarms: the next hit proceeds *)
      ignore (Fault.hit s));
  let classified e = Sysutil.is_resource_exhaustion e in
  Alcotest.(check bool) "ENOSPC" true
    (classified (Unix.Unix_error (Unix.ENOSPC, "write", "")));
  Alcotest.(check bool) "EMFILE" true
    (classified (Unix.Unix_error (Unix.EMFILE, "open", "")));
  Alcotest.(check bool) "EDQUOT (errno 122)" true
    (classified (Unix.Unix_error (Unix.EUNKNOWNERR 122, "write", "")));
  Alcotest.(check bool) "EIO is not exhaustion" false
    (classified (Unix.Unix_error (Unix.EIO, "write", "")));
  Alcotest.(check bool) "non-unix is not exhaustion" false
    (classified Not_found)

(* ---- wire codec: Page_request / Page_reply ---------------------------- *)

let test_wire_page_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close a; Unix.close b)
    (fun () ->
      Wire.write_repl_request a (Wire.Page_request { cluster = 7; pid = 42 });
      (match Wire.read_repl_request b with
       | Wire.Page_request { cluster = 7; pid = 42 } -> ()
       | _ -> Alcotest.fail "Page_request did not roundtrip");
      let page = String.make Page.page_size 'p' in
      Wire.write_repl_response b
        (Wire.Page_reply { cluster = 3; pid = 42; page = Some page });
      (match Wire.read_repl_response a with
       | Wire.Page_reply { cluster = 3; pid = 42; page = Some p } ->
         Alcotest.(check int) "page size" Page.page_size (String.length p);
         Alcotest.(check bool) "page bytes" true (p = page)
       | _ -> Alcotest.fail "Page_reply(Some) did not roundtrip");
      Wire.write_repl_response b
        (Wire.Page_reply { cluster = 9; pid = 1; page = None });
      match Wire.read_repl_response a with
      | Wire.Page_reply { cluster = 9; pid = 1; page = None } -> ()
      | _ -> Alcotest.fail "Page_reply(None) did not roundtrip")

(* ---- repair paths ----------------------------------------------------- *)

(* clean-resident victim: the pool's frame is the committed content and
   is written straight back through *)
let test_repair_from_pool () =
  let dir = Test_util.fresh_dir () in
  let db = mk_db dir in
  for i = 1 to 20 do insert db i done;
  Database.checkpoint db;
  (* everything just flushed: pick a clean-resident page *)
  let pid =
    match
      find_page db (fun pid ->
          Buffer_mgr.residency (Database.buffer db) pid = `Clean)
    with
    | Some pid -> pid
    | None -> Alcotest.fail "no clean-resident page after checkpoint"
  in
  flip db pid;
  Alcotest.(check bool) "corrupt on disk" true (verify db pid = `Corrupt);
  let st = Scrubber.run_pass (Scrubber.create db) in
  Alcotest.(check int) "one corruption found" 1 st.Scrubber.corrupt;
  Alcotest.(check int) "repaired from pool" 1 st.Scrubber.repaired_pool;
  Alcotest.(check bool) "clean after repair" true (verify db pid = `Ok);
  Alcotest.(check string) "document intact" "20" (count_entries db);
  Database.close db

(* absent victim with a committed WAL after-image: redo-from-log repair *)
let test_repair_from_wal () =
  let dir = Test_util.fresh_dir () in
  (* tiny pool: pages are evicted as the document grows *)
  let db = mk_db ~frames:2 dir in
  for i = 1 to 30 do insert db i done;
  let wal_pids = committed_wal_pids db in
  let pid =
    match
      find_page db (fun pid ->
          Buffer_mgr.residency (Database.buffer db) pid = `Absent
          && Hashtbl.mem wal_pids pid)
    with
    | Some pid -> pid
    | None -> Alcotest.fail "no absent page with a WAL after-image"
  in
  flip db pid;
  let st = Scrubber.run_pass (Scrubber.create db) in
  Alcotest.(check bool) "repaired from wal" true (st.Scrubber.repaired_wal >= 1);
  Alcotest.(check bool) "clean after repair" true (verify db pid = `Ok);
  Alcotest.(check string) "document intact" "30" (count_entries db);
  Database.close db

(* absent victim whose after-image a checkpoint truncated away: only
   the injected fetch hook (the standby, in production) can supply it *)
let test_repair_from_fetch_stub () =
  let dir = Test_util.fresh_dir () in
  let db = mk_db ~frames:2 dir in
  for i = 1 to 30 do insert db i done;
  Database.checkpoint db;
  let pid =
    match
      find_page db (fun pid ->
          Buffer_mgr.residency (Database.buffer db) pid = `Absent)
    with
    | Some pid -> pid
    | None -> Alcotest.fail "no absent page after checkpoint"
  in
  (* keep the good bytes, as the standby would have them *)
  let fs = Buffer_mgr.store (Database.buffer db) in
  let good = Bytes.create Page.page_size in
  let fd = Unix.openfile (File_store.path fs) [ Unix.O_RDONLY ] 0 in
  ignore (Unix.lseek fd (pid * Page.page_size) Unix.SEEK_SET);
  let rec fill off =
    if off < Page.page_size then
      match Unix.read fd good off (Page.page_size - off) with
      | 0 -> Alcotest.fail "short read of victim page"
      | n -> fill (off + n)
  in
  fill 0;
  Unix.close fd;
  flip db pid;
  (* without a fetch hook the repair must fail honestly... *)
  let st = Scrubber.run_pass (Scrubber.create db) in
  Alcotest.(check bool) "repair failed without hook" true
    (st.Scrubber.failed >= 1);
  Alcotest.(check bool) "still corrupt" true (verify db pid = `Corrupt);
  (* ...and with one, land the peer's copy *)
  let fetch p = if p = pid then Some (Bytes.copy good) else None in
  let st = Scrubber.run_pass (Scrubber.create ~fetch db) in
  Alcotest.(check bool) "repaired from fetch" true
    (st.Scrubber.repaired_standby >= 1);
  Alcotest.(check bool) "clean after repair" true (verify db pid = `Ok);
  Alcotest.(check string) "document intact" "30" (count_entries db);
  Database.close db

(* a dirty resident frame defers: the flush rewrites the page anyway *)
let test_repair_defers_dirty () =
  let dir = Test_util.fresh_dir () in
  let db = mk_db dir in
  for i = 1 to 5 do insert db i done;
  (* no checkpoint: the data pages are dirty-resident *)
  let pid =
    match
      find_page db (fun pid ->
          Buffer_mgr.residency (Database.buffer db) pid = `Dirty)
    with
    | Some pid -> pid
    | None -> Alcotest.fail "no dirty-resident page"
  in
  flip db pid;
  let st = Scrubber.run_pass (Scrubber.create db) in
  Alcotest.(check bool) "deferred" true (st.Scrubber.deferred >= 1);
  Database.checkpoint db;
  Alcotest.(check bool) "flush healed the disk" true (verify db pid = `Ok);
  Database.close db

(* ---- no false positives against a concurrent writer ------------------- *)

let test_scrub_vs_writer () =
  let dir = Test_util.fresh_dir () in
  let db = mk_db ~frames:8 dir in
  let g = G.create () in
  G.register_database g ~name:"d" db;
  let corrupt0 = Counters.get Counters.scrub_corrupt in
  let stop = ref false in
  let writer =
    Thread.create
      (fun () ->
        let i = ref 100 in
        while not !stop do
          incr i;
          G.with_engine g (fun () -> insert db !i)
        done)
      ()
  in
  let sc = Scrubber.create ~lock:(fun f -> G.with_engine g f) db in
  for _ = 1 to 3 do
    ignore (Scrubber.run_pass sc)
  done;
  stop := true;
  Thread.join writer;
  Alcotest.(check int) "no false positives under a live writer" corrupt0
    (Counters.get Counters.scrub_corrupt);
  G.shutdown g

(* ---- checksum adoption under concurrent readers ------------------------ *)

let test_adopt_under_concurrent_readers () =
  let dir = Test_util.fresh_dir () in
  let db = mk_db dir in
  for i = 1 to 20 do insert db i done;
  Database.close db;
  (* a pre-checksum store: every page adopts its CRC on first read *)
  Sys.remove (Filename.concat dir "data.sdb.cksum");
  let db = Database.open_existing dir in
  let g = G.create () in
  G.register_database g ~name:"d" db;
  let adopt0 = Counters.get Counters.checksum_adopt in
  let errors = ref 0 in
  let mu = Mutex.create () in
  let reader () =
    try
      let s = Session.connect db in
      for _ = 1 to 10 do
        let n =
          G.with_engine g (fun () ->
              Session.execute_string s {|count(doc("d")/d/e)|})
        in
        if n <> "20" then begin
          Mutex.lock mu; incr errors; Mutex.unlock mu
        end
      done
    with _ ->
      Mutex.lock mu; incr errors; Mutex.unlock mu
  in
  let ts = List.init 4 (fun _ -> Thread.create reader ()) in
  List.iter Thread.join ts;
  Alcotest.(check int) "no reader errors" 0 !errors;
  Alcotest.(check bool) "checksums adopted" true
    (Counters.get Counters.checksum_adopt > adopt0);
  (* and the adopted sidecar verifies clean end to end *)
  let st =
    Scrubber.run_pass (Scrubber.create ~lock:(fun f -> G.with_engine g f) db)
  in
  Alcotest.(check int) "scrub clean after adoption" 0 st.Scrubber.corrupt;
  G.shutdown g

(* ---- degraded mode ----------------------------------------------------- *)

let test_degraded_semantics () =
  let dir = Test_util.fresh_dir () in
  let db = mk_db dir in
  insert db 1;
  let rejected0 = Counters.get Counters.degraded_rejected_writes in
  Database.enter_degraded db "test: disk full";
  Database.enter_degraded db "test: again" (* idempotent *);
  Alcotest.(check bool) "degraded" true (Database.is_degraded db);
  Alcotest.(check string) "first reason wins" "test: disk full"
    (Database.degraded_reason db);
  (match Database.begin_txn db with
   | exception Error.Sedna_error (Error.Degraded, _) -> ()
   | _ -> Alcotest.fail "write transaction began while degraded");
  Alcotest.(check bool) "refusal counted" true
    (Counters.get Counters.degraded_rejected_writes > rejected0);
  (* reads keep working *)
  let txn = Database.begin_txn ~read_only:true db in
  Database.commit db txn;
  Alcotest.(check string) "read served while degraded" "1" (count_entries db);
  (* SE-DEGRADED is its own refusal code, distinct from fencing *)
  Alcotest.(check string) "code name" "SE-DEGRADED"
    (Error.code_name Error.Degraded);
  Database.exit_degraded db;
  Database.exit_degraded db (* idempotent *);
  Alcotest.(check bool) "recovered" false (Database.is_degraded db);
  insert db 2;
  Alcotest.(check string) "writes resume" "2" (count_entries db);
  Database.close db

(* a write mid-transaction that hits injected ENOSPC at the group-commit
   fsync: SE-DEGRADED to the caller, transaction aborted, no false ack *)
let test_commit_enospc_degrades () =
  let dir = Test_util.fresh_dir () in
  let db = mk_db dir in
  insert db 1;
  Fault.arm_spec "wal.group_sync:enospc@1";
  (match insert db 2 with
   | () -> Alcotest.fail "commit acked across a failed group fsync"
   | exception Error.Sedna_error (Error.Degraded, _) -> ()
   | exception e ->
     Alcotest.fail ("wanted SE-DEGRADED, got " ^ Printexc.to_string e));
  Fault.disarm_all ();
  Alcotest.(check bool) "node degraded" true (Database.is_degraded db);
  Alcotest.(check string) "failed write invisible" "1" (count_entries db);
  Database.exit_degraded db;
  insert db 3;
  Alcotest.(check string) "writes resume" "2" (count_entries db);
  Database.close db

(* ---- watchdog hysteresis ----------------------------------------------- *)

let test_watchdog_degrade_and_recover () =
  let dir = Test_util.fresh_dir () in
  let db = mk_db dir in
  (* a healthy probe is silent *)
  Watchdog.probe_dir dir;
  Fault.arm_spec "store.enospc:enospc@1";
  let wd =
    Watchdog.start ~interval_s:0.01 ~recover_after:2 ~dir
      ~get_db:(fun () -> Some db)
      ()
  in
  let wait_for cond =
    let d = Unix.gettimeofday () +. 5. in
    while (not (cond ())) && Unix.gettimeofday () < d do
      Thread.delay 0.005
    done;
    cond ()
  in
  Alcotest.(check bool) "probe ENOSPC degrades" true
    (wait_for (fun () -> Database.is_degraded db));
  (* the policy self-disarmed: consecutive healthy probes recover *)
  Alcotest.(check bool) "hysteresis recovers" true
    (wait_for (fun () -> not (Database.is_degraded db)));
  Watchdog.stop wd;
  Fault.disarm_all ();
  insert db 1;
  Alcotest.(check string) "writes work after recovery" "1" (count_entries db);
  Database.close db

let suite =
  [
    Alcotest.test_case "enospc action + errno classifier" `Quick
      test_enospc_policy;
    Alcotest.test_case "wire page request/reply roundtrip" `Quick
      test_wire_page_roundtrip;
    Alcotest.test_case "repair from clean resident frame" `Quick
      test_repair_from_pool;
    Alcotest.test_case "repair from WAL after-image" `Quick
      test_repair_from_wal;
    Alcotest.test_case "repair from fetch hook (standby)" `Quick
      test_repair_from_fetch_stub;
    Alcotest.test_case "dirty frame defers to flush" `Quick
      test_repair_defers_dirty;
    Alcotest.test_case "no false positives vs live writer" `Quick
      test_scrub_vs_writer;
    Alcotest.test_case "checksum adoption under concurrent readers" `Quick
      test_adopt_under_concurrent_readers;
    Alcotest.test_case "degraded mode refuses writes, serves reads" `Quick
      test_degraded_semantics;
    Alcotest.test_case "commit-path ENOSPC degrades, no false ack" `Quick
      test_commit_enospc_degrades;
    Alcotest.test_case "watchdog degrades and recovers" `Quick
      test_watchdog_degrade_and_recover;
  ]
