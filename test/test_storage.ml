(* Storage substrate tests: xptr encoding, the page file, the buffer
   manager with its software VAS, the text store and the indirection
   table. *)

open Sedna_core

let test_xptr_encoding () =
  let p = Xptr.make ~layer:5 ~addr:(3 * Page.page_size + 17) in
  Alcotest.(check int) "layer" 5 (Xptr.layer p);
  Alcotest.(check int) "addr" (3 * Page.page_size + 17) (Xptr.addr p);
  Alcotest.(check int) "page id" (5 * Page.pages_per_layer + 3) (Xptr.page_id p);
  Alcotest.(check int) "offset" 17 (Xptr.page_offset p);
  Alcotest.(check bool) "null" true (Xptr.is_null Xptr.null);
  Alcotest.(check bool) "not null" false (Xptr.is_null p);
  let q = Xptr.of_page_id (Xptr.page_id p) in
  Alcotest.(check bool) "page start round trip" true
    (Xptr.equal q (Xptr.page_start p))

let with_bm ?(frames = 8) f =
  let dir = Test_util.fresh_dir () in
  Unix.mkdir dir 0o755;
  let fs = File_store.create (Filename.concat dir "data.sdb") in
  let bm = Buffer_mgr.create ~frames fs in
  Fun.protect ~finally:(fun () -> File_store.close fs) (fun () -> f fs bm)

let test_file_store () =
  with_bm (fun fs _bm ->
      let a = File_store.allocate fs in
      let b = File_store.allocate fs in
      Alcotest.(check bool) "distinct" true (a <> b);
      let img = Bytes.make Page.page_size 'x' in
      File_store.write_page fs a img;
      let back = Bytes.create Page.page_size in
      File_store.read_page fs a back;
      Alcotest.(check bytes) "round trip" img back;
      File_store.free fs b;
      let c = File_store.allocate fs in
      Alcotest.(check int) "free list reuse" b c;
      Alcotest.check_raises "oob read"
        (Sedna_util.Error.Sedna_error
           (Sedna_util.Error.Page_out_of_bounds, "read of page 99 (of 3)"))
        (fun () -> File_store.read_page fs 99 back))

let test_buffer_rw () =
  with_bm (fun _fs bm ->
      let p = Buffer_mgr.allocate_page bm in
      Buffer_mgr.write_u16 bm (Xptr.add p 0) 0xbeef;
      Buffer_mgr.write_i64 bm (Xptr.add p 8) 123456789L;
      Buffer_mgr.write_string bm (Xptr.add p 100) "hello";
      Alcotest.(check int) "u16" 0xbeef (Buffer_mgr.read_u16 bm (Xptr.add p 0));
      Alcotest.(check int64) "i64" 123456789L (Buffer_mgr.read_i64 bm (Xptr.add p 8));
      Alcotest.(check string) "string" "hello"
        (Buffer_mgr.read_string bm (Xptr.add p 100) 5))

let test_buffer_eviction_persists () =
  with_bm ~frames:4 (fun _fs bm ->
      (* write more pages than frames; evicted dirty pages must survive *)
      let pages = List.init 16 (fun _ -> Buffer_mgr.allocate_page bm) in
      List.iteri
        (fun i p -> Buffer_mgr.write_i32 bm (Xptr.add p 4) (1000 + i))
        pages;
      List.iteri
        (fun i p ->
          Alcotest.(check int)
            (Printf.sprintf "page %d content" i)
            (1000 + i)
            (Buffer_mgr.read_i32 bm (Xptr.add p 4)))
        pages)

let test_vas_fast_path () =
  with_bm ~frames:8 (fun _fs bm ->
      let p = Buffer_mgr.allocate_page bm in
      Buffer_mgr.write_i32 bm p 7;
      Sedna_util.Counters.reset Sedna_util.Counters.vas_fast_hit;
      for _ = 1 to 100 do
        ignore (Buffer_mgr.read_i32 bm p)
      done;
      Alcotest.(check int) "all hits took the VAS fast path" 100
        (Sedna_util.Counters.get Sedna_util.Counters.vas_fast_hit);
      (* with the equality mapping disabled, hits go to the table *)
      Buffer_mgr.set_use_vas bm false;
      Sedna_util.Counters.reset Sedna_util.Counters.vas_fast_hit;
      Sedna_util.Counters.reset Sedna_util.Counters.buffer_hit;
      for _ = 1 to 50 do
        ignore (Buffer_mgr.read_i32 bm p)
      done;
      Alcotest.(check int) "no fast path" 0
        (Sedna_util.Counters.get Sedna_util.Counters.vas_fast_hit);
      Alcotest.(check int) "table hits" 50
        (Sedna_util.Counters.get Sedna_util.Counters.buffer_hit))

let test_layer_conflict () =
  (* two pages in the same in-layer slot but different layers compete
     for the VAS slot; both remain readable *)
  with_bm ~frames:8 (fun fs bm ->
      (* page ids layer 0 page 1 and layer 1 page 1 *)
      for _ = 0 to Page.pages_per_layer + 2 do
        ignore (File_store.allocate fs)
      done;
      let a = Xptr.of_page_id 1 in
      let b = Xptr.of_page_id (Page.pages_per_layer + 1) in
      Buffer_mgr.write_i32 bm a 111;
      Buffer_mgr.write_i32 bm b 222;
      Alcotest.(check int) "a" 111 (Buffer_mgr.read_i32 bm a);
      Alcotest.(check int) "b" 222 (Buffer_mgr.read_i32 bm b);
      Alcotest.(check int) "a again" 111 (Buffer_mgr.read_i32 bm a))

let test_pins_protect () =
  with_bm ~frames:2 (fun _fs bm ->
      let p = Buffer_mgr.allocate_page bm in
      Buffer_mgr.write_i32 bm p 42;
      Buffer_mgr.pin_pid bm (Xptr.page_id p);
      (* force pressure *)
      let others = List.init 8 (fun _ -> Buffer_mgr.allocate_page bm) in
      List.iter (fun q -> Buffer_mgr.write_i32 bm q 0) others;
      Alcotest.(check int) "pinned page intact" 42 (Buffer_mgr.read_i32 bm p);
      Buffer_mgr.unpin_pid bm (Xptr.page_id p))

(* ---- text store -------------------------------------------------------- *)

let with_store f =
  Test_util.with_db (fun db ->
      Database.with_txn db (fun txn st ->
          Database.lock_exn db txn ~doc:"x" ~mode:Lock_mgr.Exclusive;
          f st))

let test_text_basic () =
  with_store (fun st ->
      let bm = st.Store.bm and cat = st.Store.cat in
      let a = Text_store.insert bm cat "hello" in
      let b = Text_store.insert bm cat "world!" in
      Alcotest.(check string) "a" "hello" (Text_store.read bm a);
      Alcotest.(check string) "b" "world!" (Text_store.read bm b);
      Alcotest.(check int) "len" 6 (Text_store.length bm b);
      let a' = Text_store.update bm cat a "replaced value" in
      Alcotest.(check string) "updated" "replaced value" (Text_store.read bm a');
      Text_store.delete bm cat b;
      Alcotest.(check string) "survivor" "replaced value" (Text_store.read bm a'))

let test_text_compaction () =
  with_store (fun st ->
      let bm = st.Store.bm and cat = st.Store.cat in
      (* fill a page, delete every other value, re-insert into the holes *)
      let vals = List.init 30 (fun i -> String.make 100 (Char.chr (65 + (i mod 26)))) in
      let slots = List.map (fun v -> Text_store.insert bm cat v) vals in
      List.iteri
        (fun i s -> if i mod 2 = 0 then Text_store.delete bm cat s)
        slots;
      let survivors =
        List.filteri (fun i _ -> i mod 2 = 1) (List.combine slots vals)
      in
      List.iter
        (fun (s, v) -> Alcotest.(check string) "survivor intact" v (Text_store.read bm s))
        survivors;
      let more = List.init 10 (fun i -> Text_store.insert bm cat (String.make 120 (Char.chr (97 + i)))) in
      List.iteri
        (fun i s ->
          Alcotest.(check string) "new value"
            (String.make 120 (Char.chr (97 + i)))
            (Text_store.read bm s))
        more)

let test_text_overflow () =
  with_store (fun st ->
      let bm = st.Store.bm and cat = st.Store.cat in
      let big = String.init 100_000 (fun i -> Char.chr (33 + (i mod 90))) in
      let s = Text_store.insert bm cat big in
      Alcotest.(check int) "length" 100_000 (Text_store.length bm s);
      Alcotest.(check string) "content" big (Text_store.read bm s);
      let s2 = Text_store.update bm cat s "now small" in
      Alcotest.(check string) "shrunk" "now small" (Text_store.read bm s2))

(* property: a random insert/delete/update script over the text store
   matches a reference map *)
let arb_text_ops =
  QCheck.make
    QCheck.Gen.(
      list_size (int_range 1 150)
        (triple (int_range 0 2) (int_range 0 24) (int_range 0 6)))

let prop_text_store_matches_reference ops =
  let ok = ref true in
  Test_util.with_db (fun db ->
      Database.with_txn db (fun txn st ->
          Database.lock_exn db txn ~doc:"x" ~mode:Lock_mgr.Exclusive;
          let bm = st.Store.bm and cat = st.Store.cat in
          let live = ref [] (* (slot, value) in insertion order *) in
          let value_of i l =
            (* sizes from tiny to overflow-length *)
            String.make (1 + (i * 211 mod 5000) + (l * 997 mod 97)) (Char.chr (65 + (i mod 26)))
          in
          List.iteri
            (fun step (op, i, l) ->
              match op with
              | 0 ->
                let v = value_of i l in
                let s = Text_store.insert bm cat v in
                live := (s, v) :: !live
              | 1 -> (
                match !live with
                | [] -> ()
                | _ ->
                  let idx = i mod List.length !live in
                  let s, _ = List.nth !live idx in
                  Text_store.delete bm cat s;
                  live := List.filteri (fun j _ -> j <> idx) !live)
              | _ -> (
                match !live with
                | [] -> ()
                | _ ->
                  let idx = i mod List.length !live in
                  let s, _ = List.nth !live idx in
                  let v = value_of (i + step) l in
                  let s' = Text_store.update bm cat s v in
                  live :=
                    List.mapi (fun j e -> if j = idx then (s', v) else e) !live))
            ops;
          List.iter
            (fun (s, v) -> if Text_store.read bm s <> v then ok := false)
            !live));
  !ok

(* ---- indirection --------------------------------------------------------- *)

let test_indirection () =
  with_store (fun st ->
      let bm = st.Store.bm and cat = st.Store.cat in
      let cells = List.init 600 (fun _ -> Indirection.alloc bm cat) in
      (* 600 cells > one page's worth: the table grew *)
      List.iteri
        (fun i c -> Indirection.set bm c (Xptr.make ~layer:1 ~addr:(i * 8)))
        cells;
      List.iteri
        (fun i c ->
          Alcotest.(check bool)
            "deref" true
            (Xptr.equal (Indirection.get bm c) (Xptr.make ~layer:1 ~addr:(i * 8))))
        cells;
      (* free and reuse *)
      let victim = List.nth cells 5 in
      Indirection.free bm cat victim;
      let again = Indirection.alloc bm cat in
      Alcotest.(check bool) "cell recycled" true (Xptr.equal victim again))

(* Carriage returns survive store -> serialize -> parse: the serializer
   must emit &#13; (a literal CR in an attribute would re-parse as a
   space under XML attribute-value normalization). *)
let test_cr_roundtrip () =
  Test_util.with_db (fun db ->
      ignore (Test_util.load db "d" "<r a=\"x&#13;y\">p&#13;q</r>");
      let out = Test_util.exec db {|doc("d")|} in
      let contains needle =
        let nl = String.length needle and ol = String.length out in
        let rec go i =
          i + nl <= ol && (String.sub out i nl = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "serializer emits &#13;" true (contains "&#13;");
      Alcotest.(check bool) "no raw CR in output" false (String.contains out '\r');
      (* identity: re-parse the serialized form and compare values *)
      ignore (Test_util.load db "d2" out);
      Alcotest.(check string) "attribute CR preserved" "x\ry"
        (Test_util.exec db {|string(doc("d2")/r/@a)|});
      Alcotest.(check string) "text CR preserved" "p\rq"
        (Test_util.exec db {|string(doc("d2")/r)|});
      (* and the premise: a literal CR in an attribute value is
         whitespace the parser normalizes to a space *)
      ignore (Test_util.load db "d3" "<r a=\"x\ry\"/>");
      Alcotest.(check string) "literal CR normalized away" "x y"
        (Test_util.exec db {|string(doc("d3")/r/@a)|}))

let suite =
  [
    Alcotest.test_case "xptr encoding" `Quick test_xptr_encoding;
    Alcotest.test_case "file store" `Quick test_file_store;
    Alcotest.test_case "buffer read/write" `Quick test_buffer_rw;
    Alcotest.test_case "eviction persists" `Quick test_buffer_eviction_persists;
    Alcotest.test_case "vas fast path" `Quick test_vas_fast_path;
    Alcotest.test_case "layer slot conflict" `Quick test_layer_conflict;
    Alcotest.test_case "pins protect" `Quick test_pins_protect;
    Alcotest.test_case "text basic" `Quick test_text_basic;
    Alcotest.test_case "text compaction" `Quick test_text_compaction;
    Alcotest.test_case "text overflow" `Quick test_text_overflow;
    Test_util.qcheck_case ~count:40 "text store matches reference"
      arb_text_ops prop_text_store_matches_reference;
    Alcotest.test_case "indirection" `Quick test_indirection;
    Alcotest.test_case "carriage-return round trip" `Quick test_cr_roundtrip;
  ]
