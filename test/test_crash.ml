(* Crash-safety tests: fault-injection plumbing, page checksums, WAL
   torn-tail truncation, and the systematic crash-recovery matrix. *)

open Sedna_util
open Sedna_core
module Crashkit = Sedna_db.Crashkit

(* Every storage layer registers its sites at module init, so the
   harness (and the CLI's \faults) can enumerate them. *)
let test_sites_registered () =
  let sites = Fault.sites () in
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " registered") true (List.mem s sites))
    [
      "wal.append"; "wal.sync"; "wal.reset"; "file_store.write";
      "file_store.sync"; "buffer.flush"; "buffer.evict"; "backup.copy";
    ]

let test_policy_parsing () =
  let p = Fault.parse_policy "crash@2" in
  Alcotest.(check string) "crash@2" "crash@2" (Fault.policy_to_string p);
  let site, p = Fault.parse_spec "wal.append:torn@3+" in
  Alcotest.(check string) "site" "wal.append" site;
  Alcotest.(check string) "torn@3+" "torn@3+" (Fault.policy_to_string p);
  (match Fault.parse_spec "wal.sync:fail%0.25/7" with
   | _, { Fault.action = Fault.Fail; trigger = Fault.Prob (0.25, 7) } -> ()
   | _ -> Alcotest.fail "probability policy parsed wrong");
  (match Fault.parse_policy "explode@1" with
   | exception _ -> ()
   | _ -> Alcotest.fail "bad action accepted")

(* An armed Nth policy fires exactly once and self-disarms. *)
let test_nth_fires_once () =
  let s = Fault.site "test.crash_suite" in
  let before = Fault.site_hits s in
  Fault.with_armed "test.crash_suite" (Fault.parse_policy "fail@2") (fun () ->
      ignore (Fault.hit s);
      (match Fault.hit s with
       | exception Fault.Injected_fault _ -> ()
       | _ -> Alcotest.fail "2nd hit did not fail");
      (* Nth self-disarmed: the third hit proceeds *)
      ignore (Fault.hit s));
  Alcotest.(check int) "hits counted" (before + 3) (Fault.site_hits s)

(* Regression: a torn frame at the WAL tail must be truncated on open.
   The old open seeked to the end of the file and appended *behind* the
   garbage, so everything written after recovery was unreachable by the
   next recovery — acknowledged commits silently lost. *)
let test_wal_truncates_torn_tail () =
  let dir = Test_util.fresh_dir () in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "wal.sdb" in
  let w = Wal.create path in
  Wal.append w (Wal.Begin 1);
  Wal.append w (Wal.Commit (1, None));
  Wal.sync w;
  Wal.close w;
  (* a partial frame left by a crash mid-append *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "\255\255\255\255 torn tail";
  close_out oc;
  let w = Wal.open_existing path in
  Wal.append w (Wal.Begin 2);
  Wal.append w (Wal.Commit (2, None));
  Wal.sync w;
  Wal.close w;
  let commits =
    List.filter_map
      (function Wal.Commit (t, _) -> Some t | _ -> None)
      (Wal.read_all path)
  in
  Alcotest.(check (list int)) "commits readable after torn tail" [ 1; 2 ]
    commits

(* An Abort record appended after a Commit (the commit's fsync failed
   and the engine rolled back) supersedes it: recovery must not replay
   that transaction. *)
let test_abort_supersedes_commit () =
  let dir = Test_util.fresh_dir () in
  let db = Database.create dir in
  ignore (Test_util.load db "d" "<a><v>keep</v></a>");
  Fault.with_armed "wal.sync" (Fault.parse_policy "fail@1") (fun () ->
      match
        Test_util.exec db {|UPDATE replace $v in doc("d")/a/v with <v>gone</v>|}
      with
      | _ -> Alcotest.fail "commit succeeded under failing fsync"
      | exception Fault.Injected_fault _ -> ());
  (* the rolled-back update is invisible live... *)
  Alcotest.(check string) "rolled back" "keep"
    (Test_util.exec db {|string(doc("d")/a/v)|});
  (* ...and must stay invisible across a crash + recovery, even though
     its Commit record sits in the log *)
  Database.crash db;
  let db = Database.open_existing dir in
  Alcotest.(check string) "not resurrected by recovery" "keep"
    (Test_util.exec db {|string(doc("d")/a/v)|});
  Database.close db

(* A flipped byte on disk is detected by the page checksum and surfaces
   as Corrupt_page instead of being served as data. *)
let test_checksum_detects_flip () =
  let dir = Test_util.fresh_dir () in
  let db = Database.create dir in
  ignore (Test_util.load db "d" "<a><v>payload</v></a>");
  Database.close db;
  (* flip one byte in every data page (the master page 0 excluded), so
     whichever page the query reads first is corrupt *)
  let path = Filename.concat dir "data.sdb" in
  let size = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  for p = 1 to (size / Page.page_size) - 1 do
    let off = (p * Page.page_size) + 137 in
    let b = Bytes.create 1 in
    ignore (Unix.lseek fd off Unix.SEEK_SET);
    ignore (Unix.read fd b 0 1);
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
    ignore (Unix.lseek fd off Unix.SEEK_SET);
    ignore (Unix.write fd b 0 1)
  done;
  Unix.close fd;
  let db = Database.open_existing dir in
  (match Test_util.exec db {|string(doc("d")/a/v)|} with
   | v -> Alcotest.failf "flipped page served as data: %S" v
   | exception Error.Sedna_error (Error.Corrupt_page, _) -> ());
  Database.crash db

(* Deterministic single-spec runs with sharper assertions than the
   matrix makes. *)
let check_outcome o =
  if not (Crashkit.ok o) then Alcotest.failf "%s" (Crashkit.render o)

let test_crash_during_commit () =
  let o = Crashkit.run_spec ~dir:(Test_util.fresh_dir ()) "wal.append:crash@5" in
  check_outcome o;
  Alcotest.(check bool) "fired" true o.Crashkit.fired;
  Alcotest.(check bool) "crashed" true (o.Crashkit.crashes >= 1);
  Alcotest.(check int) "every acked commit recovered" o.Crashkit.acked
    o.Crashkit.recovered

let test_torn_page_write () =
  let o =
    Crashkit.run_spec ~dir:(Test_util.fresh_dir ()) "file_store.write:torn@2"
  in
  check_outcome o;
  Alcotest.(check bool) "fired" true o.Crashkit.fired;
  Alcotest.(check int) "every acked commit recovered" o.Crashkit.acked
    o.Crashkit.recovered

let test_crash_during_checkpoint () =
  let o = Crashkit.run_spec ~dir:(Test_util.fresh_dir ()) "wal.reset:crash@1" in
  check_outcome o;
  Alcotest.(check bool) "fired" true o.Crashkit.fired

let test_crash_during_backup () =
  let o = Crashkit.run_spec ~dir:(Test_util.fresh_dir ()) "backup.copy:crash@3" in
  check_outcome o;
  Alcotest.(check bool) "fired" true o.Crashkit.fired

(* The full matrix: every registered site crossed with crash/torn/fail
   policies.  Durability and integrity must hold for every cell. *)
let test_crash_matrix () =
  let outcomes = Crashkit.run_matrix ~dir_prefix:(Test_util.fresh_dir ()) () in
  Alcotest.(check bool) "matrix ran" true (List.length outcomes > 0);
  List.iter check_outcome outcomes;
  Alcotest.(check bool) "policies fired" true
    (List.exists (fun o -> o.Crashkit.fired) outcomes)

let suite =
  [
    Alcotest.test_case "sites registered" `Quick test_sites_registered;
    Alcotest.test_case "policy parsing" `Quick test_policy_parsing;
    Alcotest.test_case "nth fires once" `Quick test_nth_fires_once;
    Alcotest.test_case "wal truncates torn tail" `Quick
      test_wal_truncates_torn_tail;
    Alcotest.test_case "abort supersedes commit" `Quick
      test_abort_supersedes_commit;
    Alcotest.test_case "checksum detects flip" `Quick
      test_checksum_detects_flip;
    Alcotest.test_case "crash during commit" `Quick test_crash_during_commit;
    Alcotest.test_case "torn page write" `Quick test_torn_page_write;
    Alcotest.test_case "crash during checkpoint" `Quick
      test_crash_during_checkpoint;
    Alcotest.test_case "crash during backup" `Quick test_crash_during_backup;
    Alcotest.test_case "crash matrix" `Slow test_crash_matrix;
  ]
