(* Serving-layer tests: wire protocol round trips, concurrent sessions
   over real TCP connections (paper §3 architecture, §6.3 snapshot
   isolation), admission control and graceful shutdown. *)

module Server = Sedna_server.Server
module Client = Sedna_server.Server_client
module Wire = Sedna_server.Wire
module G = Sedna_db.Governor

let with_server ?limits ?config f =
  let dir = Test_util.fresh_dir () in
  let g = G.create () in
  ignore (G.create_database g ~name:"main" ~dir);
  (match limits with Some l -> G.set_limits g l | None -> ());
  let srv = Server.start ?config g in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () -> f g srv dir)

let with_client srv f =
  let c = Client.connect ~port:(Server.port srv) () in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let open_client srv =
  let c = Client.connect ~port:(Server.port srv) () in
  ignore (Client.open_db c "main");
  c

(* ---- wire protocol ---------------------------------------------------- *)

let test_wire_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () ->
      let requests =
        [
          Wire.Open "main";
          Wire.Execute "count(doc(\"d\")//x)";
          Wire.Fetch 4096;
          Wire.Close;
        ]
      in
      List.iter (Wire.write_request a) requests;
      List.iter
        (fun want ->
          let trace, epoch, got = Wire.read_request b in
          Alcotest.(check bool) "no trace header" true (trace = None);
          Alcotest.(check bool) "no epoch header" true (epoch = None);
          Alcotest.(check bool) "request round trip" true (got = want))
        requests;
      (* the optional trace and epoch headers ride inside the same frame *)
      Wire.write_request ~trace:"00c0ffee00c0ffee:42" ~epoch:7 a (Wire.Execute "1+1");
      let trace, epoch, got = Wire.read_request b in
      Alcotest.(check bool) "trace header round trip" true
        (trace = Some "00c0ffee00c0ffee:42" && got = Wire.Execute "1+1");
      Alcotest.(check bool) "epoch header round trip" true (epoch = Some 7);
      let responses =
        [
          Wire.Opened 7;
          Wire.Updated 3;
          Wire.Message "ok";
          Wire.Result_ready 11;
          Wire.Chunk { last = false; data = "<r a=\"&#13;\"/>" };
          Wire.Chunk { last = true; data = "" };
          Wire.Err { code = "SE-OVERLOADED"; msg = "queue full" };
          Wire.Bye;
        ]
      in
      List.iter (Wire.write_response b) responses;
      List.iter
        (fun want ->
          let epoch, got = Wire.read_response a in
          Alcotest.(check bool) "no response epoch" true (epoch = None);
          Alcotest.(check bool) "response round trip" true (got = want))
        responses;
      (* responses carry the epoch header too *)
      Wire.write_response ~epoch:9 b (Wire.Message "fenced gossip");
      let epoch, got = Wire.read_response a in
      Alcotest.(check bool) "response epoch round trip" true
        (epoch = Some 9 && got = Wire.Message "fenced gossip"))

(* ---- basic execution over TCP ----------------------------------------- *)

let test_execute_over_tcp () =
  with_server (fun _g srv _dir ->
      with_client srv (fun c ->
          ignore (Client.open_db c "main");
          (match Client.execute c {|CREATE DOCUMENT "d"|} with
           | Sedna_db.Session.Message _ -> ()
           | _ -> Alcotest.fail "DDL should answer with a message");
          (match Client.execute c {|UPDATE insert <a><b>7</b><b>9</b></a> into doc("d")|} with
           | Sedna_db.Session.Updated n ->
             Alcotest.(check bool) "update count" true (n > 0)
           | _ -> Alcotest.fail "update should answer with a count");
          Alcotest.(check string) "query" "2"
            (Client.execute_string c {|count(doc("d")//b)|});
          Alcotest.(check string) "values" "79"
            (Client.execute_string c {|string(doc("d")//b[1])|}
             ^ Client.execute_string c {|string(doc("d")//b[2])|})))

let test_fetch_batches () =
  with_server (fun _g srv _dir ->
      (* a tiny fetch chunk forces the result through many batches *)
      let c = Client.connect ~port:(Server.port srv) ~fetch_chunk:5 () in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          ignore (Client.open_db c "main");
          ignore (Client.execute c {|CREATE DOCUMENT "d"|});
          ignore
            (Client.execute c
               {|UPDATE insert <long>abcdefghijklmnopqrstuvwxyz0123456789</long> into doc("d")|});
          Alcotest.(check string) "reassembled across chunks"
            "abcdefghijklmnopqrstuvwxyz0123456789"
            (Client.execute_string c {|string(doc("d")/long)|})))

(* ---- §6.3: snapshot reader while a writer is uncommitted --------------- *)

let test_snapshot_reader_under_writer () =
  with_server (fun _g srv _dir ->
      let setup = open_client srv in
      ignore (Client.execute setup {|CREATE DOCUMENT "d"|});
      ignore (Client.execute setup {|UPDATE insert <r><n/><n/></r> into doc("d")|});
      Client.close setup;
      let writer = open_client srv in
      let reader = open_client srv in
      Fun.protect
        ~finally:(fun () ->
          Client.close writer;
          Client.close reader)
        (fun () ->
          ignore (Client.execute writer "BEGIN");
          (match Client.execute writer {|UPDATE insert <n/> into doc("d")/r|} with
           | Sedna_db.Session.Updated _ -> ()
           | _ -> Alcotest.fail "writer update");
          (* the writer transaction is open and holds the exclusive
             document lock; a snapshot reader on another connection
             must still complete, seeing the pre-writer state *)
          Alcotest.(check string) "reader sees snapshot, does not block" "2"
            (Client.execute_string reader {|count(doc("d")/r/n)|});
          ignore (Client.execute writer "COMMIT");
          (* a fresh statement takes a fresh snapshot *)
          Alcotest.(check string) "reader sees the commit afterwards" "3"
            (Client.execute_string reader {|count(doc("d")/r/n)|})))

(* a second writer blocks behind the first one's document lock and
   surfaces a clean lock error, while readers keep flowing *)
let test_writer_blocks_writer () =
  with_server (fun _g srv _dir ->
      let setup = open_client srv in
      ignore (Client.execute setup {|CREATE DOCUMENT "d"|});
      Client.close setup;
      let w1 = open_client srv in
      let w2 = open_client srv in
      Fun.protect
        ~finally:(fun () ->
          Client.close w1;
          Client.close w2)
        (fun () ->
          ignore (Client.execute w1 "BEGIN");
          ignore (Client.execute w1 {|UPDATE insert <x/> into doc("d")|});
          (match Client.execute w2 {|UPDATE insert <y/> into doc("d")|} with
           | exception Client.Remote_error (code, _) ->
             Alcotest.(check string) "second writer times out on the lock"
               "SE-LOCK-TIMEOUT" code
           | _ -> Alcotest.fail "second writer should block behind the X lock");
          ignore (Client.execute w1 "COMMIT");
          (* with the lock released the second writer goes through *)
          (match Client.execute w2 {|UPDATE insert <y/> into doc("d")|} with
           | Sedna_db.Session.Updated _ -> ()
           | _ -> Alcotest.fail "second writer after commit")))

(* ---- admission control ------------------------------------------------- *)

let test_session_limit_overload () =
  with_server
    ~limits:{ G.max_sessions = 2; query_timeout_s = 0. }
    (fun _g srv _dir ->
      let c1 = open_client srv in
      let c2 = open_client srv in
      let c3 = Client.connect ~port:(Server.port srv) () in
      Fun.protect
        ~finally:(fun () ->
          Client.close c1;
          Client.close c2;
          Client.close c3)
        (fun () ->
          (match Client.open_db c3 "main" with
           | exception Client.Remote_error (code, _) ->
             Alcotest.(check string) "limit refusal" "SE-OVERLOADED" code
           | _ -> Alcotest.fail "third session should be refused");
          (* freeing a slot lets the next open succeed *)
          Client.close c2;
          let c4 = open_client srv in
          Alcotest.(check string) "slot reusable" "2"
            (Client.execute_string c4 "1 + 1");
          Client.close c4))

let test_queue_backpressure () =
  with_server
    ~config:{ Server.default_config with pool_size = 1; max_queue = 1 }
    (fun g srv _dir ->
      let a = open_client srv in
      let t = ref None in
      let queued_fd = ref None in
      Fun.protect
        ~finally:(fun () ->
          (match !t with Some th -> Thread.join th | None -> ());
          Client.close a;
          match !queued_fd with
          | Some fd -> ( try Unix.close fd with _ -> ())
          | None -> ())
        (fun () ->
          (* occupy the single worker: its statement blocks on the
             store lock we hold, deterministically *)
          G.with_engine g (fun () ->
              t :=
                Some
                  (Thread.create
                     (fun () -> ignore (Client.execute_string a "1 + 1"))
                     ());
              Thread.delay 0.15;
              (* the worker is busy with [a]; a raw connection fills the
                 accept queue (we never have to speak on it) *)
              let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
              Unix.connect fd
                (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port srv));
              queued_fd := Some fd;
              Thread.delay 0.15;
              (* queue full: the next connection is refused at accept *)
              let c = Client.connect ~port:(Server.port srv) () in
              (match Client.open_db c "main" with
               | exception Client.Remote_error (code, _) ->
                 Alcotest.(check string) "backpressure refusal" "SE-OVERLOADED"
                   code
               | _ -> Alcotest.fail "over-queue connection should be refused");
              Client.close c)
          (* leaving [with_engine] releases the store lock: [a]'s
             statement completes and the finally above joins it *)))

let test_query_timeout () =
  with_server
    ~limits:{ G.max_sessions = 8; query_timeout_s = 0.05 }
    (fun _g srv _dir ->
      let setup = open_client srv in
      ignore (Client.execute setup {|CREATE DOCUMENT "d"|});
      let wide =
        "UPDATE insert <r>"
        ^ String.concat "" (List.init 120 (fun i -> Printf.sprintf "<x i=\"%d\"/>" i))
        ^ "</r> into doc(\"d\")"
      in
      ignore (Client.execute setup wide);
      Client.close setup;
      let victim = open_client srv in
      let survivor = open_client srv in
      Fun.protect
        ~finally:(fun () ->
          Client.close victim;
          Client.close survivor)
        (fun () ->
          (* the survivor's explicit transaction stays open across the
             victim's timeout: only the offender's transaction aborts *)
          ignore (Client.execute survivor "BEGIN");
          ignore (Client.execute survivor {|UPDATE insert <kept/> into doc("d")/r|});
          let heavy =
            {|count(for $a in doc("d")//x, $b in doc("d")//x, $c in doc("d")//x return 1)|}
          in
          (match Client.execute victim heavy with
           | exception Client.Remote_error (code, _) ->
             Alcotest.(check string) "deadline fired" "SE-TIMEOUT" code
           | _ -> Alcotest.fail "heavy query should exceed its budget");
          (* the victim's connection and session survive the abort *)
          Alcotest.(check string) "victim session usable afterwards" "120"
            (Client.execute_string victim {|count(doc("d")/r/x)|});
          (match Client.execute survivor "COMMIT" with
           | Sedna_db.Session.Message _ -> ()
           | _ -> Alcotest.fail "survivor commit");
          Alcotest.(check string) "survivor's work committed" "1"
            (Client.execute_string victim {|count(doc("d")/r/kept)|})))

(* ---- concurrent mixed workload ----------------------------------------- *)

let test_concurrent_clients () =
  with_server (fun _g srv _dir ->
      let setup = open_client srv in
      ignore (Client.execute setup {|CREATE DOCUMENT "d"|});
      ignore (Client.execute setup {|UPDATE insert <r/> into doc("d")|});
      Client.close setup;
      let clients = 4 and per_client = 12 in
      let errors = Array.make clients "" in
      let threads =
        List.init clients (fun i ->
            Thread.create
              (fun () ->
                try
                  let c = open_client srv in
                  for j = 1 to per_client do
                    if i = 0 then
                      ignore
                        (Client.execute c
                           (Printf.sprintf
                              {|UPDATE insert <n c="%d" j="%d"/> into doc("d")/r|}
                              i j))
                    else ignore (Client.execute_string c {|count(doc("d")/r/n)|})
                  done;
                  Client.close c
                with
                | Client.Remote_error (code, msg) ->
                  (* writers can collide on the document lock; that is a
                     clean, expected outcome — anything else is not *)
                  if code <> "SE-LOCK-TIMEOUT" then
                    errors.(i) <- Printf.sprintf "%s: %s" code msg
                | e -> errors.(i) <- Printexc.to_string e)
              ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i e -> if e <> "" then Alcotest.failf "client %d failed: %s" i e)
        errors;
      let check = open_client srv in
      Alcotest.(check string) "writer's inserts all committed"
        (string_of_int per_client)
        (Client.execute_string check {|count(doc("d")/r/n)|});
      Client.close check)

(* ---- graceful shutdown -------------------------------------------------- *)

let test_graceful_shutdown_recoverable () =
  let dir = Test_util.fresh_dir () in
  let g = G.create () in
  ignore (G.create_database g ~name:"main" ~dir);
  let srv = Server.start g in
  let c = open_client srv in
  ignore (Client.execute c {|CREATE DOCUMENT "d"|});
  ignore (Client.execute c {|UPDATE insert <r><a/><b/></r> into doc("d")|});
  (* leave an uncommitted transaction behind: the drain must roll it
     back, not persist it *)
  ignore (Client.execute c "BEGIN");
  ignore (Client.execute c {|UPDATE insert <uncommitted/> into doc("d")/r|});
  Server.stop srv;
  (* the connection is dead afterwards *)
  (match Client.execute c {|count(doc("d"))|} with
   | exception _ -> ()
   | _ -> Alcotest.fail "connection should be closed after shutdown");
  Client.close c;
  (* the store reopens cleanly: WAL was closed, checkpoint taken,
     integrity holds, and the open transaction did not commit *)
  let db = Sedna_core.Database.open_existing dir in
  Fun.protect
    ~finally:(fun () -> Sedna_core.Database.close db)
    (fun () ->
      (match Sedna_core.Integrity.check_all (Sedna_core.Database.store db) with
       | [] -> ()
       | problems ->
         Alcotest.failf "integrity after shutdown: %s"
           (String.concat "; "
              (List.concat_map
                 (fun (d, es) -> List.map (fun e -> d ^ ": " ^ e) es)
                 problems)));
      let s = Sedna_db.Session.connect db in
      Alcotest.(check string) "committed data survived" "2"
        (Sedna_db.Session.execute_string s {|count(doc("d")/r/*)|});
      Alcotest.(check string) "uncommitted insert rolled back" "0"
        (Sedna_db.Session.execute_string s {|count(doc("d")/r/uncommitted)|}))

let test_observability_report () =
  with_server (fun g srv _dir ->
      let c = open_client srv in
      ignore (Client.execute c {|CREATE DOCUMENT "d"|});
      ignore (Client.execute_string c {|count(doc("d"))|});
      Client.close c;
      let report = G.observability_report g in
      let has needle =
        let nl = String.length needle and rl = String.length report in
        let rec go i =
          i + nl <= rl && (String.sub report i nl = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "serving section" true (has "serving:");
      Alcotest.(check bool) "accepted counter" true (has "accepted"))

let suite =
  [
    Alcotest.test_case "wire round trip" `Quick test_wire_roundtrip;
    Alcotest.test_case "execute over tcp" `Quick test_execute_over_tcp;
    Alcotest.test_case "fetch batches" `Quick test_fetch_batches;
    Alcotest.test_case "snapshot reader under writer" `Quick
      test_snapshot_reader_under_writer;
    Alcotest.test_case "writer blocks writer" `Quick test_writer_blocks_writer;
    Alcotest.test_case "session-limit overload" `Quick test_session_limit_overload;
    Alcotest.test_case "queue backpressure" `Quick test_queue_backpressure;
    Alcotest.test_case "query timeout isolation" `Quick test_query_timeout;
    Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients;
    Alcotest.test_case "graceful shutdown recoverable" `Quick
      test_graceful_shutdown_recoverable;
    Alcotest.test_case "observability report" `Quick test_observability_report;
  ]
