(* Transaction tests (paper §6): atomicity, S2PL locking with deadlock
   detection, snapshot reads, version purging. *)

open Sedna_core

let test_commit_visible () =
  Test_util.with_db (fun db ->
      ignore (Test_util.load db "d" "<a><v>1</v></a>");
      ignore (Test_util.exec db {|UPDATE replace $v in doc("d")/a/v with <v>2</v>|});
      Alcotest.(check string) "committed" "2"
        (Test_util.exec db {|string(doc("d")/a/v)|}))

let test_abort_restores () =
  Test_util.with_db (fun db ->
      ignore (Test_util.load db "d" "<a><v>1</v></a>");
      let s = Sedna_db.Session.connect db in
      Sedna_db.Session.begin_txn s;
      ignore (Sedna_db.Session.execute s {|UPDATE replace $v in doc("d")/a/v with <v>99</v>|});
      ignore (Sedna_db.Session.execute s {|UPDATE insert <w/> into doc("d")/a|});
      Sedna_db.Session.rollback s;
      Alcotest.(check string) "value restored" "1"
        (Test_util.exec db {|string(doc("d")/a/v)|});
      Alcotest.(check string) "no w" "0" (Test_util.exec db {|count(doc("d")/a/w)|});
      (* the store is structurally sound after the rollback *)
      Database.with_txn db (fun txn st ->
          Database.lock_exn db txn ~doc:"d" ~mode:Lock_mgr.Shared;
          Test_util.check_invariants st "d"))

let test_abort_restores_catalog () =
  Test_util.with_db (fun db ->
      ignore (Test_util.load db "d" "<a/>");
      let s = Sedna_db.Session.connect db in
      Sedna_db.Session.begin_txn s;
      ignore (Sedna_db.Session.execute s {|CREATE DOCUMENT "temp"|});
      Sedna_db.Session.rollback s;
      Alcotest.(check bool) "temp gone" true
        (Catalog.find_document (Database.catalog db) "temp" = None))

let test_lock_conflicts () =
  Test_util.with_db (fun db ->
      ignore (Test_util.load db "d" "<a/>");
      let t1 = Database.begin_txn db in
      let t2 = Database.begin_txn db in
      Alcotest.(check bool) "t1 S granted" true
        (Database.lock db t1 ~doc:"d" ~mode:Lock_mgr.Shared = Lock_mgr.Granted);
      Alcotest.(check bool) "t2 S granted" true
        (Database.lock db t2 ~doc:"d" ~mode:Lock_mgr.Shared = Lock_mgr.Granted);
      (* t2 upgrade blocks behind t1's shared lock *)
      Alcotest.(check bool) "t2 X blocked" true
        (Database.lock db t2 ~doc:"d" ~mode:Lock_mgr.Exclusive = Lock_mgr.Blocked);
      (* releasing t1 promotes t2 *)
      Database.commit db t1;
      Alcotest.(check bool) "t2 now exclusive" true
        (Lock_mgr.holds (Database.lock_manager db) "d" t2.Txn.id
         = Some Lock_mgr.Exclusive);
      Database.commit db t2)

let test_deadlock_detection () =
  Test_util.with_db (fun db ->
      ignore (Test_util.load db "x" "<a/>");
      ignore (Test_util.load db "y" "<a/>");
      let t1 = Database.begin_txn db in
      let t2 = Database.begin_txn db in
      Alcotest.(check bool) "t1 X x" true
        (Database.lock db t1 ~doc:"x" ~mode:Lock_mgr.Exclusive = Lock_mgr.Granted);
      Alcotest.(check bool) "t2 X y" true
        (Database.lock db t2 ~doc:"y" ~mode:Lock_mgr.Exclusive = Lock_mgr.Granted);
      Alcotest.(check bool) "t1 waits for y" true
        (Database.lock db t1 ~doc:"y" ~mode:Lock_mgr.Exclusive = Lock_mgr.Blocked);
      Alcotest.(check bool) "t2 -> x is a deadlock" true
        (Database.lock db t2 ~doc:"x" ~mode:Lock_mgr.Exclusive
         = Lock_mgr.Deadlock_detected);
      Database.abort db t2;
      (* t1's queued request for y is granted once t2 dies *)
      Alcotest.(check bool) "t1 got y" true
        (Lock_mgr.holds (Database.lock_manager db) "y" t1.Txn.id
         = Some Lock_mgr.Exclusive);
      Database.commit db t1)

let test_three_txn_deadlock_cycle () =
  Test_util.with_db (fun db ->
      ignore (Test_util.load db "x" "<a/>");
      ignore (Test_util.load db "y" "<a/>");
      ignore (Test_util.load db "z" "<a/>");
      let lm = Database.lock_manager db in
      let t1 = Database.begin_txn db in
      let t2 = Database.begin_txn db in
      let t3 = Database.begin_txn db in
      let x txn doc = Database.lock db txn ~doc ~mode:Lock_mgr.Exclusive in
      Alcotest.(check bool) "t1 X x" true (x t1 "x" = Lock_mgr.Granted);
      Alcotest.(check bool) "t2 X y" true (x t2 "y" = Lock_mgr.Granted);
      Alcotest.(check bool) "t3 X z" true (x t3 "z" = Lock_mgr.Granted);
      (* t1 -> t2 -> t3 -> t1: only the last edge closes the cycle *)
      Alcotest.(check bool) "t1 waits for y" true (x t1 "y" = Lock_mgr.Blocked);
      Alcotest.(check bool) "t2 waits for z" true (x t2 "z" = Lock_mgr.Blocked);
      Alcotest.(check bool) "t3 -> x closes the cycle" true
        (x t3 "x" = Lock_mgr.Deadlock_detected);
      (* aborting the victim breaks the cycle: t2's queued request for z
         is promoted, then the survivors unwind in turn *)
      Database.abort db t3;
      Alcotest.(check bool) "t2 promoted to z" true
        (Lock_mgr.holds lm "z" t2.Txn.id = Some Lock_mgr.Exclusive);
      Database.commit db t2;
      Alcotest.(check bool) "t1 promoted to y" true
        (Lock_mgr.holds lm "y" t1.Txn.id = Some Lock_mgr.Exclusive);
      Database.commit db t1;
      (* nothing left behind in the lock tables *)
      List.iter
        (fun doc ->
          Alcotest.(check int) (doc ^ " holders drained") 0
            (List.length (Lock_mgr.holders lm doc));
          Alcotest.(check int) (doc ^ " waiters drained") 0
            (List.length (Lock_mgr.waiters lm doc)))
        [ "x"; "y"; "z" ])

let test_timeout_leaves_lock_tables_clean () =
  Test_util.with_db (fun db ->
      ignore (Test_util.load db "d" "<a><n>0</n></a>");
      let lm = Database.lock_manager db in
      let s1 = Sedna_db.Session.connect db in
      let s2 = Sedna_db.Session.connect db in
      Sedna_db.Session.begin_txn s1;
      ignore (Sedna_db.Session.execute s1 {|UPDATE replace $n in doc("d")/a/n with <n>1</n>|});
      Sedna_db.Session.begin_txn s2;
      (* Lock_timeout is a catchable statement error that aborts only
         s2's transaction; neither its lock nor its queued request may
         survive the abort *)
      (match Sedna_db.Session.execute s2 {|UPDATE replace $n in doc("d")/a/n with <n>2</n>|} with
       | exception Sedna_util.Error.Sedna_error (Sedna_util.Error.Lock_timeout, _) -> ()
       | _ -> Alcotest.fail "expected Lock_timeout");
      Alcotest.(check bool) "s2 dropped out of its transaction" false
        (Sedna_db.Session.in_transaction s2);
      Alcotest.(check int) "s1 is the only holder" 1
        (List.length (Lock_mgr.holders lm "d"));
      Alcotest.(check int) "no queued waiters" 0
        (List.length (Lock_mgr.waiters lm "d"));
      Sedna_db.Session.commit s1;
      Alcotest.(check int) "tables drained after commit" 0
        (List.length (Lock_mgr.holders lm "d")))

let test_snapshot_reader () =
  Test_util.with_db (fun db ->
      ignore (Test_util.load db "d" "<a><v>old</v></a>");
      let reader = Database.begin_txn ~read_only:true db in
      let read () =
        Database.run db reader (fun () ->
            let st = Database.txn_store db reader in
            let dd = Test_util.doc_desc st "d" in
            Node_ser.string_value st dd)
      in
      Alcotest.(check string) "before update" "old" (read ());
      ignore (Test_util.exec db {|UPDATE replace $v in doc("d")/a/v with <v>new</v>|});
      Alcotest.(check string) "reader keeps snapshot" "old" (read ());
      Alcotest.(check string) "others see new" "new"
        (Test_util.exec db {|string(doc("d")/a/v)|});
      Database.commit db reader;
      (* after the snapshot is released, versions are purged *)
      Alcotest.(check int) "versions purged" 0
        (Versions.version_count (Database.versions db)))

let test_snapshot_sees_schema_of_its_time () =
  Test_util.with_db (fun db ->
      ignore (Test_util.load db "d" "<a><v>1</v></a>");
      let reader = Database.begin_txn ~read_only:true db in
      (* an updater introduces a brand new element kind (schema change) *)
      ignore (Test_util.exec db {|UPDATE insert <brandnew/> into doc("d")/a|});
      let seen =
        Database.run db reader (fun () ->
            let st = Database.txn_store db reader in
            let dd = Test_util.doc_desc st "d" in
            let a = List.hd (Node.children st dd) in
            List.length (Node.children st a))
      in
      Alcotest.(check int) "old child count" 1 seen;
      Database.commit db reader)

let test_reader_sees_uncommitted_nothing () =
  Test_util.with_db (fun db ->
      ignore (Test_util.load db "d" "<a><v>1</v></a>");
      let s = Sedna_db.Session.connect db in
      Sedna_db.Session.begin_txn s;
      ignore (Sedna_db.Session.execute s {|UPDATE replace $v in doc("d")/a/v with <v>dirty</v>|});
      (* a snapshot reader started now must not see the uncommitted data *)
      let reader = Database.begin_txn ~read_only:true db in
      let seen =
        Database.run db reader (fun () ->
            let st = Database.txn_store db reader in
            Node_ser.string_value st (Test_util.doc_desc st "d"))
      in
      Alcotest.(check string) "no dirty read" "1" seen;
      Database.commit db reader;
      Sedna_db.Session.commit s;
      Alcotest.(check string) "committed now" "dirty"
        (Test_util.exec db {|string(doc("d")/a/v)|}))

let test_readonly_cannot_write () =
  Test_util.with_db (fun db ->
      ignore (Test_util.load db "d" "<a/>");
      let s = Sedna_db.Session.connect db in
      Sedna_db.Session.begin_txn ~read_only:true s;
      (match Sedna_db.Session.execute s {|UPDATE insert <x/> into doc("d")/a|} with
       | exception Sedna_util.Error.Sedna_error (Sedna_util.Error.Txn_read_only, _) -> ()
       | _ -> Alcotest.fail "read-only transaction accepted an update");
      Sedna_db.Session.rollback s)

let test_two_writers_serialize () =
  Test_util.with_db (fun db ->
      ignore (Test_util.load db "d" "<a><n>0</n></a>");
      let s1 = Sedna_db.Session.connect db in
      let s2 = Sedna_db.Session.connect db in
      Sedna_db.Session.begin_txn s1;
      ignore (Sedna_db.Session.execute s1 {|UPDATE replace $n in doc("d")/a/n with <n>1</n>|});
      Sedna_db.Session.begin_txn s2;
      (* s2 blocks on the X lock held by s1 *)
      (match Sedna_db.Session.execute s2 {|UPDATE replace $n in doc("d")/a/n with <n>2</n>|} with
       | exception Sedna_util.Error.Sedna_error (Sedna_util.Error.Lock_timeout, _) -> ()
       | _ -> Alcotest.fail "second writer was not blocked");
      Sedna_db.Session.commit s1;
      (* the timeout aborted s2's transaction (locks released, session
         alive); after s1 commits, s2 retries in a fresh transaction *)
      Sedna_db.Session.begin_txn s2;
      ignore (Sedna_db.Session.execute s2 {|UPDATE replace $n in doc("d")/a/n with <n>2</n>|});
      Sedna_db.Session.commit s2;
      Alcotest.(check string) "final" "2" (Test_util.exec db {|string(doc("d")/a/n)|}))

let test_version_purge_on_creation () =
  Test_util.with_db (fun db ->
      ignore (Test_util.load db "d" "<a><v>0</v></a>");
      (* no snapshot registered: commits must not accumulate versions *)
      for i = 1 to 5 do
        ignore
          (Test_util.exec db
             (Printf.sprintf {|UPDATE replace $v in doc("d")/a/v with <v>%d</v>|} i))
      done;
      Alcotest.(check int) "no stale versions" 0
        (Versions.version_count (Database.versions db)))

let suite =
  [
    Alcotest.test_case "commit visible" `Quick test_commit_visible;
    Alcotest.test_case "abort restores pages" `Quick test_abort_restores;
    Alcotest.test_case "abort restores catalog" `Quick test_abort_restores_catalog;
    Alcotest.test_case "lock conflicts and upgrade" `Quick test_lock_conflicts;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "three-txn deadlock cycle" `Quick
      test_three_txn_deadlock_cycle;
    Alcotest.test_case "timeout leaves lock tables clean" `Quick
      test_timeout_leaves_lock_tables_clean;
    Alcotest.test_case "snapshot reader" `Quick test_snapshot_reader;
    Alcotest.test_case "snapshot schema isolation" `Quick
      test_snapshot_sees_schema_of_its_time;
    Alcotest.test_case "no dirty reads" `Quick test_reader_sees_uncommitted_nothing;
    Alcotest.test_case "read-only rejects writes" `Quick test_readonly_cannot_write;
    Alcotest.test_case "writers serialize" `Quick test_two_writers_serialize;
    Alcotest.test_case "version purge" `Quick test_version_purge_on_creation;
  ]
