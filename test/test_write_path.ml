(* Write-path tests for the group-commit PR: thread-safe counters, the
   slow-log file sink, and commit coalescing with its failure and crash
   discipline. *)

open Sedna_util
open Sedna_core
module Governor = Sedna_db.Governor
module Session = Sedna_db.Session
module Crashkit = Sedna_db.Crashkit

let rm_rf dir =
  if Sys.file_exists dir then
    ignore (Sys.command ("rm -rf " ^ Filename.quote dir))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ---- counters under concurrency ---------------------------------------- *)

(* 4 threads hammering one name plus a second name with ?n bumps: the
   totals must be exact — a read-modify-write race would lose updates. *)
let test_counters_concurrent () =
  let name = "test.wp_concurrent" and name2 = "test.wp_concurrent2" in
  Counters.reset name;
  Counters.reset name2;
  let per_thread = 25_000 in
  let worker _ =
    Thread.create
      (fun () ->
        for _ = 1 to per_thread do
          Counters.bump name;
          Counters.bump ~n:3 name2
        done)
      ()
  in
  let ts = List.init 4 worker in
  List.iter Thread.join ts;
  Alcotest.(check int) "exact total" (4 * per_thread) (Counters.get name);
  Alcotest.(check int) "exact ?n total" (4 * per_thread * 3) (Counters.get name2);
  Counters.reset name;
  Counters.reset name2

(* ---- slow-log file sink ------------------------------------------------- *)

(* Every record is flushed as it is written: a tail of the sink file
   must show the statement immediately, not after some later close. *)
let test_slow_log_tail_visible () =
  let saved = Slow_log.threshold () in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sedna-slowlog-%d.jsonl" (Unix.getpid ()))
  in
  if Sys.file_exists path then Sys.remove path;
  Fun.protect
    ~finally:(fun () ->
      Slow_log.set_file None;
      Slow_log.set_threshold saved;
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Slow_log.set_threshold 0.;
      Slow_log.set_file (Some path);
      let observe text =
        Slow_log.observe ~trace:"" ~session:1 ~text ~kind:"query" ~ok:true
          ~cached:false ~total_s:0.5 ~spans:[ ("eval", 480.) ]
      in
      let read_all () =
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      observe "first statement";
      let s1 = read_all () in
      Alcotest.(check bool) "first record visible" true
        (contains s1 "first statement");
      observe "second statement";
      let s2 = read_all () in
      Alcotest.(check bool) "second record visible" true
        (contains s2 "second statement");
      Alcotest.(check bool) "first record kept" true
        (contains s2 "first statement"))

(* ---- group commit ------------------------------------------------------- *)

let entry_token t i = Printf.sprintf "|t%d-%d|" t i

let insert_stmt ?(doc = "log") token =
  Printf.sprintf {|UPDATE insert <e>%s</e> into doc(%S)/log|} token doc

let load_doc db name =
  ignore
    (Database.with_txn db (fun txn st ->
         Database.lock_exn db txn ~doc:name ~mode:Lock_mgr.Exclusive;
         Loader.load_string st ~doc_name:name "<log/>"))

let with_cluster f =
  let dir = Test_util.fresh_dir () in
  Unix.mkdir dir 0o755;
  let gov = Governor.create () in
  let db = Governor.create_database gov ~name:"db" ~dir in
  ignore
    (Database.with_txn db (fun txn st ->
         Database.lock_exn db txn ~doc:"log" ~mode:Lock_mgr.Exclusive;
         Loader.load_string st ~doc_name:"log" "<log/>"));
  Fun.protect
    ~finally:(fun () ->
      (try Governor.shutdown gov with _ -> ());
      rm_rf dir)
    (fun () -> f gov db)

(* N committers racing through the engine lock, each writing its own
   document (the coalescing workload: a commit parked on doc A overlaps
   statements against docs B..H): the parked waits must coalesce into
   fewer WAL syncs than commits, and every acked entry must be in its
   document. *)
let test_group_commit_coalesces () =
  with_cluster (fun gov db ->
      let threads = 8 and per_thread = 15 in
      let doc t = Printf.sprintf "log%d" t in
      for t = 0 to threads - 1 do
        Governor.with_engine gov (fun () -> load_doc db (doc t))
      done;
      let syncs0 = Counters.get Counters.wal_group_syncs in
      let acked = Array.make threads 0 in
      let failures = ref [] in
      let mu = Mutex.create () in
      let worker t =
        Thread.create
          (fun () ->
            let _, s = Governor.connect gov ~database:"db" in
            for i = 1 to per_thread do
              match
                Governor.with_engine gov (fun () ->
                    ignore
                      (Session.execute s
                         (insert_stmt ~doc:(doc t) (entry_token t i))))
              with
              | () -> acked.(t) <- acked.(t) + 1
              | exception e ->
                Mutex.lock mu;
                failures := Printexc.to_string e :: !failures;
                Mutex.unlock mu
            done)
          ()
      in
      let ts = List.init threads worker in
      List.iter Thread.join ts;
      (match !failures with
       | [] -> ()
       | e :: _ -> Alcotest.failf "concurrent insert failed: %s" e);
      let commits = Array.fold_left ( + ) 0 acked in
      Alcotest.(check int) "all commits acked" (threads * per_thread) commits;
      let syncs = Counters.get Counters.wal_group_syncs - syncs0 in
      Alcotest.(check bool) "at least one group sync" true (syncs >= 1);
      Alcotest.(check bool)
        (Printf.sprintf "coalesced: %d syncs for %d commits" syncs commits)
        true
        (syncs < commits);
      for t = 0 to threads - 1 do
        let text =
          Test_util.exec db (Printf.sprintf {|string(doc(%S)/log)|} (doc t))
        in
        for i = 1 to per_thread do
          if not (contains text (entry_token t i)) then
            Alcotest.failf "acked entry %s missing" (entry_token t i)
        done
      done)

(* A failed group sync must fail every commit parked on it — no false
   acks — while the sessions survive and later commits go through. *)
let test_group_sync_failure_isolated () =
  with_cluster (fun gov db ->
      Fault.with_armed "wal.group_sync" (Fault.parse_policy "fail@1")
        (fun () ->
          match
            Governor.with_engine gov (fun () ->
                ignore (Test_util.exec db (insert_stmt "|doomed|")))
          with
          | () -> Alcotest.fail "commit acked across a failed sync"
          | exception _ -> ());
      let text = Test_util.exec db {|string(doc("log")/log)|} in
      Alcotest.(check bool) "failed commit not applied" false
        (contains text "|doomed|");
      (* the engine is healthy: the next commit succeeds and is visible *)
      Governor.with_engine gov (fun () ->
          ignore (Test_util.exec db (insert_stmt "|survivor|")));
      let text = Test_util.exec db {|string(doc("log")/log)|} in
      Alcotest.(check bool) "later commit lands" true
        (contains text "|survivor|"))

(* Same, under concurrency: the one failed sync takes down only the
   commits parked on it; every acked entry is present, every failed one
   absent. *)
let test_group_sync_failure_concurrent () =
  with_cluster (fun gov _db ->
      Fault.arm "wal.group_sync" (Fault.parse_policy "fail@1");
      let threads = 4 and per_thread = 4 in
      let acked = ref [] and failed = ref [] in
      let mu = Mutex.create () in
      let note r tok =
        Mutex.lock mu;
        r := tok :: !r;
        Mutex.unlock mu
      in
      let worker t =
        Thread.create
          (fun () ->
            let _, s = Governor.connect gov ~database:"db" in
            for i = 1 to per_thread do
              let tok = entry_token t i in
              match
                Governor.with_engine gov (fun () ->
                    ignore (Session.execute s (insert_stmt tok)))
              with
              | () -> note acked tok
              | exception _ -> note failed tok
            done)
          ()
      in
      let ts = List.init threads worker in
      List.iter Thread.join ts;
      Fault.disarm_all ();
      Alcotest.(check bool) "the armed sync failure fired" true
        (!failed <> []);
      Alcotest.(check bool) "later commits recovered" true (!acked <> []);
      let db = Governor.get_database gov "db" in
      let text = Test_util.exec db {|string(doc("log")/log)|} in
      List.iter
        (fun tok ->
          if not (contains text tok) then
            Alcotest.failf "acked entry %s missing" tok)
        !acked;
      List.iter
        (fun tok ->
          if contains text tok then
            Alcotest.failf "failed entry %s falsely applied" tok)
        !failed)

(* The checkpoint resets WAL positions; the group-commit cursor must
   follow, or post-checkpoint commits would "already be synced". *)
let test_group_commit_across_checkpoint () =
  with_cluster (fun gov db ->
      Governor.with_engine gov (fun () ->
          ignore (Test_util.exec db (insert_stmt "|pre-ckpt|")));
      Governor.with_engine gov (fun () -> Database.checkpoint db);
      Governor.with_engine gov (fun () ->
          ignore (Test_util.exec db (insert_stmt "|post-ckpt|")));
      (* the post-checkpoint commit must be genuinely durable: reopen
         from disk and look for it *)
      let dir = Database.directory db in
      Database.crash db;
      let db2 = Database.open_existing dir in
      Fun.protect
        ~finally:(fun () -> try Database.close db2 with _ -> ())
        (fun () ->
          let text = Test_util.exec db2 {|string(doc("log")/log)|} in
          Alcotest.(check bool) "pre-checkpoint entry" true
            (contains text "|pre-ckpt|");
          Alcotest.(check bool) "post-checkpoint entry" true
            (contains text "|post-ckpt|")))

(* The systematic harness, armed on the new site: crash in the middle
   of the shared fsync at any point of the workload and every acked
   commit must still be there after recovery. *)
let test_crash_at_group_sync () =
  let dir = Test_util.fresh_dir () in
  let o = Crashkit.run_spec ~dir "wal.group_sync:crash@2" in
  if not (Crashkit.ok o) then Alcotest.fail (Crashkit.render o);
  Alcotest.(check bool) "fault fired" true o.Crashkit.fired

let test_group_commit_toggle () =
  with_cluster (fun gov db ->
      let saved = Database.group_commit_on () in
      Fun.protect
        ~finally:(fun () -> Database.set_group_commit saved)
        (fun () ->
          Database.set_group_commit false;
          let syncs0 = Counters.get Counters.wal_group_syncs in
          Governor.with_engine gov (fun () ->
              ignore (Test_util.exec db (insert_stmt "|plain|")));
          Alcotest.(check int) "no group sync when off" syncs0
            (Counters.get Counters.wal_group_syncs);
          Database.set_group_commit true;
          Governor.with_engine gov (fun () ->
              ignore (Test_util.exec db (insert_stmt "|grouped|")));
          Alcotest.(check bool) "group sync when on" true
            (Counters.get Counters.wal_group_syncs > syncs0);
          let text = Test_util.exec db {|string(doc("log")/log)|} in
          Alcotest.(check bool) "both commits visible" true
            (contains text "|plain|" && contains text "|grouped|")))

let suite =
  [
    Alcotest.test_case "counters: exact totals under 4 threads" `Quick
      test_counters_concurrent;
    Alcotest.test_case "slow log: file sink is tail-visible" `Quick
      test_slow_log_tail_visible;
    Alcotest.test_case "group commit: concurrent committers coalesce" `Quick
      test_group_commit_coalesces;
    Alcotest.test_case "group commit: failed sync not acked" `Quick
      test_group_sync_failure_isolated;
    Alcotest.test_case "group commit: failure isolation under concurrency"
      `Quick test_group_sync_failure_concurrent;
    Alcotest.test_case "group commit: survives checkpoint" `Quick
      test_group_commit_across_checkpoint;
    Alcotest.test_case "group commit: crash during shared fsync" `Slow
      test_crash_at_group_sync;
    Alcotest.test_case "group commit: runtime toggle" `Quick
      test_group_commit_toggle;
  ]
