(* Durability tests (paper §6.4, §6.5): WAL framing, two-step recovery,
   checkpoints, torn log tails, and hot backup / restore. *)

open Sedna_core

let reopen dir = Database.open_existing dir

let test_wal_roundtrip () =
  let dir = Test_util.fresh_dir () in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "wal.sdb" in
  let w = Wal.create path in
  let img = Bytes.init Page.page_size (fun i -> Char.chr (i mod 256)) in
  Wal.append w (Wal.Begin 7);
  Wal.append w (Wal.Image (7, 42, img));
  Wal.append w (Wal.Logical (7, "update"));
  Wal.append w (Wal.Commit (7, Some "catalogblob"));
  Wal.append w Wal.Checkpoint;
  Wal.append w (Wal.Abort 8);
  Wal.sync w;
  Wal.close w;
  match Wal.read_all path with
  | [ Wal.Begin 7; Wal.Image (7, 42, img'); Wal.Logical (7, "update");
      Wal.Commit (7, Some "catalogblob"); Wal.Checkpoint; Wal.Abort 8 ] ->
    Alcotest.(check bytes) "image intact" img img'
  | records -> Alcotest.failf "unexpected records (%d)" (List.length records)

let test_torn_tail_ignored () =
  let dir = Test_util.fresh_dir () in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "wal.sdb" in
  let w = Wal.create path in
  Wal.append w (Wal.Begin 1);
  Wal.append w (Wal.Commit (1, None));
  Wal.sync w;
  Wal.close w;
  (* corrupt: append half a record *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "\255\255\255";
  close_out oc;
  Alcotest.(check int) "clean prefix survives" 2 (List.length (Wal.read_all path))

let test_crash_recovers_committed () =
  let dir = Test_util.fresh_dir () in
  let db = Database.create dir in
  ignore (Test_util.load db "d" "<a><v>1</v></a>");
  ignore (Test_util.exec db {|UPDATE replace $v in doc("d")/a/v with <v>2</v>|});
  Database.crash db;
  let db2 = reopen dir in
  Alcotest.(check string) "recovered" "2"
    (Test_util.exec db2 {|string(doc("d")/a/v)|});
  Database.with_txn db2 (fun txn st ->
      Database.lock_exn db2 txn ~doc:"d" ~mode:Lock_mgr.Shared;
      Test_util.check_invariants st "d");
  Database.close db2

let test_crash_loses_uncommitted () =
  let dir = Test_util.fresh_dir () in
  let db = Database.create dir in
  ignore (Test_util.load db "d" "<a><v>1</v></a>");
  let s = Sedna_db.Session.connect db in
  Sedna_db.Session.begin_txn s;
  ignore (Sedna_db.Session.execute s {|UPDATE replace $v in doc("d")/a/v with <v>999</v>|});
  (* crash without commit *)
  Database.crash db;
  let db2 = reopen dir in
  Alcotest.(check string) "uncommitted lost" "1"
    (Test_util.exec db2 {|string(doc("d")/a/v)|});
  Database.close db2

let test_recovery_restores_schema () =
  let dir = Test_util.fresh_dir () in
  let db = Database.create dir in
  ignore (Test_util.load db "d" "<a/>");
  (* schema evolution after the checkpoint: a new element kind *)
  ignore (Test_util.exec db {|UPDATE insert <fresh kind="yes">v</fresh> into doc("d")/a|});
  Database.crash db;
  let db2 = reopen dir in
  Alcotest.(check string) "schema recovered" "v"
    (Test_util.exec db2 {|string(doc("d")/a/fresh)|});
  Alcotest.(check string) "attribute too" "yes"
    (Test_util.exec db2 {|string(doc("d")/a/fresh/@kind)|});
  Database.close db2

let test_checkpoint_truncates_wal () =
  let dir = Test_util.fresh_dir () in
  let db = Database.create dir in
  ignore (Test_util.load db "d" "<a><v>x</v></a>");
  Database.checkpoint db;
  let wal_size = (Unix.stat (Filename.concat dir "wal.sdb")).Unix.st_size in
  Alcotest.(check bool) "wal truncated" true (wal_size < 64);
  (* a crash right after a checkpoint still recovers *)
  Database.crash db;
  let db2 = reopen dir in
  Alcotest.(check string) "state survives checkpoint" "x"
    (Test_util.exec db2 {|string(doc("d")/a/v)|});
  Database.close db2

let test_multiple_crash_cycles () =
  let dir = Test_util.fresh_dir () in
  let db = ref (Database.create dir) in
  ignore (Test_util.load !db "d" "<log/>");
  for i = 1 to 5 do
    ignore
      (Test_util.exec !db
         (Printf.sprintf {|UPDATE insert <entry n="%d"/> into doc("d")/log|} i));
    Database.crash !db;
    db := reopen dir
  done;
  Alcotest.(check string) "all five entries" "5"
    (Test_util.exec !db {|count(doc("d")/log/entry)|});
  Database.close !db

let test_backup_full_and_incremental () =
  let dir = Test_util.fresh_dir () in
  let bdir = dir ^ "-bak" in
  let r1 = dir ^ "-restore1" in
  let r2 = dir ^ "-restore2" in
  let db = Database.create dir in
  ignore (Test_util.load db "d" "<a><v>base</v></a>");
  Backup.full db ~dest:bdir;
  ignore (Test_util.exec db {|UPDATE replace $v in doc("d")/a/v with <v>after1</v>|});
  Backup.incremental db ~dest:bdir ~seq:1;
  ignore (Test_util.exec db {|UPDATE replace $v in doc("d")/a/v with <v>after2</v>|});
  Backup.incremental db ~dest:bdir ~seq:2;
  (* point-in-time: restore up to increment 1 *)
  let dbr1 = Backup.restore ~src:bdir ~dest:r1 ~up_to:1 () in
  Alcotest.(check string) "restore at increment 1" "after1"
    (Test_util.exec dbr1 {|string(doc("d")/a/v)|});
  Database.close dbr1;
  (* full restore: all increments *)
  let dbr2 = Backup.restore ~src:bdir ~dest:r2 () in
  Alcotest.(check string) "restore at tip" "after2"
    (Test_util.exec dbr2 {|string(doc("d")/a/v)|});
  Database.close dbr2;
  Database.close db

(* point-in-time depth: base + N increments, every prefix restorable,
   each restore an exact snapshot of its moment with clean structure *)
let test_backup_pit_every_increment () =
  let dir = Test_util.fresh_dir () in
  let bdir = dir ^ "-bak" in
  let increments = 4 in
  let db = Database.create dir in
  ignore (Test_util.load db "d" "<a><v>s0</v></a>");
  Backup.full db ~dest:bdir;
  for i = 1 to increments do
    ignore
      (Test_util.exec db
         (Printf.sprintf
            {|UPDATE replace $v in doc("d")/a/v with <v>s%d</v>|} i));
    Backup.incremental db ~dest:bdir ~seq:i
  done;
  (* one more update the backup chain must NOT contain *)
  ignore (Test_util.exec db {|UPDATE replace $v in doc("d")/a/v with <v>tip</v>|});
  for i = 0 to increments do
    let rdir = Printf.sprintf "%s-pit%d" dir i in
    let dbr = Backup.restore ~src:bdir ~dest:rdir ~up_to:i () in
    Alcotest.(check string)
      (Printf.sprintf "state at increment %d" i)
      (Printf.sprintf "s%d" i)
      (Test_util.exec dbr {|string(doc("d")/a/v)|});
    (match Integrity.check_document (Database.store dbr) "d" with
     | [] -> ()
     | es ->
       Alcotest.failf "restore %d integrity: %s" i (String.concat "; " es));
    Database.close dbr
  done;
  Database.close db

(* a checkpoint truncates the WAL the increments are cut from: the next
   incremental must refuse rather than silently produce a chain missing
   committed work (the WAL epoch stamp enforces this) *)
let test_backup_incremental_refused_after_checkpoint () =
  let dir = Test_util.fresh_dir () in
  let bdir = dir ^ "-bak" in
  let db = Database.create dir in
  ignore (Test_util.load db "d" "<a><v>base</v></a>");
  Backup.full db ~dest:bdir;
  ignore (Test_util.exec db {|UPDATE replace $v in doc("d")/a/v with <v>x</v>|});
  Backup.incremental db ~dest:bdir ~seq:1;
  Database.checkpoint db;
  ignore (Test_util.exec db {|UPDATE replace $v in doc("d")/a/v with <v>y</v>|});
  (match Backup.incremental db ~dest:bdir ~seq:2 with
   | () -> Alcotest.fail "incremental after checkpoint should be refused"
   | exception Sedna_util.Error.Sedna_error (code, _) ->
     Alcotest.(check string)
       "refused with recovery failure" "SE-RECOVERY"
       (Sedna_util.Error.code_name code));
  (* the pre-checkpoint chain still restores cleanly *)
  let dbr = Backup.restore ~src:bdir ~dest:(dir ^ "-pit") () in
  Alcotest.(check string) "pre-checkpoint chain intact" "x"
    (Test_util.exec dbr {|string(doc("d")/a/v)|});
  Database.close dbr;
  (* a fresh full backup restarts the chain under the new epoch *)
  let bdir2 = dir ^ "-bak2" in
  Backup.full db ~dest:bdir2;
  ignore (Test_util.exec db {|UPDATE replace $v in doc("d")/a/v with <v>z</v>|});
  Backup.incremental db ~dest:bdir2 ~seq:1;
  let dbr2 = Backup.restore ~src:bdir2 ~dest:(dir ^ "-pit2") () in
  Alcotest.(check string) "new chain works" "z"
    (Test_util.exec dbr2 {|string(doc("d")/a/v)|});
  Database.close dbr2;
  Database.close db

let test_close_reopen () =
  let dir = Test_util.fresh_dir () in
  let db = Database.create dir in
  let events = Sedna_workloads.Generators.library ~books:60 () in
  ignore (Test_util.load_events db "lib" events);
  let before = Test_util.exec db {|count(doc("lib")//author)|} in
  Database.close db;
  let db2 = reopen dir in
  Alcotest.(check string) "author count stable" before
    (Test_util.exec db2 {|count(doc("lib")//author)|});
  Database.with_txn db2 (fun txn st ->
      Database.lock_exn db2 txn ~doc:"lib" ~mode:Lock_mgr.Shared;
      Test_util.check_invariants st "lib");
  Database.close db2

let suite =
  [
    Alcotest.test_case "wal roundtrip" `Quick test_wal_roundtrip;
    Alcotest.test_case "torn tail ignored" `Quick test_torn_tail_ignored;
    Alcotest.test_case "crash recovers committed" `Quick test_crash_recovers_committed;
    Alcotest.test_case "crash loses uncommitted" `Quick test_crash_loses_uncommitted;
    Alcotest.test_case "recovery restores schema" `Quick test_recovery_restores_schema;
    Alcotest.test_case "checkpoint truncates wal" `Quick test_checkpoint_truncates_wal;
    Alcotest.test_case "multiple crash cycles" `Quick test_multiple_crash_cycles;
    Alcotest.test_case "backup full+incremental" `Quick test_backup_full_and_incremental;
    Alcotest.test_case "backup PIT at every increment" `Quick
      test_backup_pit_every_increment;
    Alcotest.test_case "backup increment refused after checkpoint" `Quick
      test_backup_incremental_refused_after_checkpoint;
    Alcotest.test_case "close and reopen" `Quick test_close_reopen;
  ]
