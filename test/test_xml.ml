(* XML parser and serializer tests. *)

open Sedna_xml

let events_of ?options s = Xml_parser.events ?options s

let count_kind pred s =
  List.length (List.filter pred (events_of s))

let test_simple () =
  let evs = events_of "<a><b>hi</b></a>" in
  Alcotest.(check int) "event count" 7 (List.length evs);
  match evs with
  | [ Xml_event.Start_document;
      Xml_event.Start_element (a, []);
      Xml_event.Start_element (b, []);
      Xml_event.Text "hi";
      Xml_event.End_element;
      Xml_event.End_element;
      Xml_event.End_document ] ->
    Alcotest.(check string) "a" "a" (Sedna_util.Xname.local a);
    Alcotest.(check string) "b" "b" (Sedna_util.Xname.local b)
  | _ -> Alcotest.fail "unexpected event shape"

let test_attributes () =
  match events_of {|<a x="1" y="two&amp;half"/>|} with
  | [ _; Xml_event.Start_element (_, atts); Xml_event.End_element; _ ] ->
    Alcotest.(check int) "attrs" 2 (List.length atts);
    let y = List.nth atts 1 in
    Alcotest.(check string) "entity in attr" "two&half" y.Xml_event.value
  | _ -> Alcotest.fail "unexpected shape"

let test_entities () =
  match events_of "<a>&lt;&gt;&amp;&apos;&quot;&#65;&#x42;</a>" with
  | [ _; _; Xml_event.Text t; _; _ ] ->
    Alcotest.(check string) "entities" "<>&'\"AB" t
  | _ -> Alcotest.fail "unexpected shape"

let test_cdata () =
  match events_of "<a><![CDATA[x < y & z]]></a>" with
  | [ _; _; Xml_event.Text t; _; _ ] ->
    Alcotest.(check string) "cdata" "x < y & z" t
  | _ -> Alcotest.fail "unexpected shape"

let test_comment_pi () =
  let evs = events_of "<a><!--note--><?target data?></a>" in
  Alcotest.(check bool) "comment" true
    (List.exists (function Xml_event.Comment "note" -> true | _ -> false) evs);
  Alcotest.(check bool) "pi" true
    (List.exists
       (function
         | Xml_event.Processing_instruction ("target", "data?" ) -> false
         | Xml_event.Processing_instruction ("target", "data") -> true
         | _ -> false)
       evs)

let test_namespaces () =
  match events_of {|<a xmlns="urn:d" xmlns:p="urn:p"><p:b/></a>|} with
  | [ _; Xml_event.Start_element (a, atts); Xml_event.Start_element (b, _); _; _; _ ] ->
    Alcotest.(check string) "default ns" "urn:d" (Sedna_util.Xname.uri a);
    Alcotest.(check string) "prefixed ns" "urn:p" (Sedna_util.Xname.uri b);
    Alcotest.(check int) "xmlns not an attribute" 0 (List.length atts)
  | _ -> Alcotest.fail "unexpected shape"

let test_whitespace_strip_preserve () =
  Alcotest.(check int) "stripped" 0
    (count_kind (function Xml_event.Text _ -> true | _ -> false) "<a>\n  <b/>\n</a>");
  let options = { Xml_parser.default_options with strip_boundary_whitespace = false } in
  let evs = events_of ~options "<a>\n  <b/>\n</a>" in
  Alcotest.(check int) "preserved" 2
    (List.length (List.filter (function Xml_event.Text _ -> true | _ -> false) evs))

let test_doctype_skipped () =
  let evs = events_of "<!DOCTYPE library [<!ELEMENT a (b)>]><a><b/></a>" in
  Alcotest.(check bool) "parsed past doctype" true
    (List.exists (function Xml_event.Start_element _ -> true | _ -> false) evs)

let test_self_closing () =
  let evs = events_of "<a><b/><c/></a>" in
  Alcotest.(check int) "elements" 3
    (List.length
       (List.filter (function Xml_event.Start_element _ -> true | _ -> false) evs))

let expect_parse_error s =
  match events_of s with
  | exception Sedna_util.Error.Sedna_error (Sedna_util.Error.Xml_parse, _) -> ()
  | _ -> Alcotest.failf "expected a parse error for %S" s

let test_errors () =
  expect_parse_error "<a><b></a>";
  expect_parse_error "<a>";
  expect_parse_error "<a x=1/>";
  expect_parse_error "<a>&unknown;</a>";
  expect_parse_error "text outside";
  expect_parse_error "<a x='1' x='2'/>";
  expect_parse_error "<a><b attr='<'/></a>"

let test_roundtrip () =
  let src = {|<lib n="1"><b t="x&amp;y">text<c/>more</b><!--c--><?p d?></lib>|} in
  let out = Serializer.to_string (events_of src) in
  let again = Serializer.to_string (events_of out) in
  Alcotest.(check string) "fixed point" out again

let test_escaping () =
  Alcotest.(check string) "text" "a&lt;b&gt;c&amp;d" (Escape.escape_text "a<b>c&d");
  Alcotest.(check string) "attr" "a&quot;b&amp;c" (Escape.escape_attribute "a\"b&c");
  (* a raw CR would be normalized to a space on re-parse, so both
     escapers must emit the character reference *)
  Alcotest.(check string) "attr CR" "a&#13;b" (Escape.escape_attribute "a\rb");
  Alcotest.(check string) "text CR" "a&#13;b" (Escape.escape_text "a\rb")

let test_indent () =
  let options = { Serializer.indent = true; xml_declaration = false } in
  let out = Serializer.to_string ~options (events_of "<a><b>x</b></a>") in
  Alcotest.(check bool) "has newline" true (String.contains out '\n')

let test_tree_parser () =
  match Xml_parser.parse_tree "<a><b>x</b><b>y</b></a>" with
  | [ Xml_parser.Element (_, _, kids) ] ->
    Alcotest.(check int) "two children" 2 (List.length kids)
  | _ -> Alcotest.fail "unexpected tree"

(* round-trip property over generated documents *)
let arb_doc =
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "c"; "data"; "x1" ] in
  let text = oneofl [ "t"; "hello world"; "a<b&c"; "  spaced  " ] in
  let rec doc depth =
    if depth = 0 then map (fun t -> Xml_parser.Tree_text t) text
    else
      frequency
        [
          (2, map (fun t -> Xml_parser.Tree_text t) text);
          ( 3,
            map2
              (fun n kids -> Xml_parser.Element (Sedna_util.Xname.make n, [], kids))
              name
              (list_size (int_range 0 4) (doc (depth - 1))) );
        ]
  in
  QCheck.make
    (QCheck.Gen.map2
       (fun n kids -> Xml_parser.Element (Sedna_util.Xname.make n, [], kids))
       name
       (QCheck.Gen.list_size (QCheck.Gen.int_range 0 5) (doc 3)))

let rec tree_to_events (t : Xml_parser.tree) : Xml_event.t list =
  match t with
  | Xml_parser.Element (n, atts, kids) ->
    (Xml_event.Start_element (n, atts) :: List.concat_map tree_to_events kids)
    @ [ Xml_event.End_element ]
  | Xml_parser.Tree_text s -> [ Xml_event.Text s ]
  | Xml_parser.Tree_comment s -> [ Xml_event.Comment s ]
  | Xml_parser.Tree_pi (t', d) -> [ Xml_event.Processing_instruction (t', d) ]

let prop_roundtrip tree =
  let s = Serializer.to_string (tree_to_events tree) in
  let options = { Xml_parser.default_options with strip_boundary_whitespace = false } in
  let s2 = Serializer.to_string (Xml_parser.events ~options s) in
  String.equal s s2

let suite =
  [
    Alcotest.test_case "simple" `Quick test_simple;
    Alcotest.test_case "attributes" `Quick test_attributes;
    Alcotest.test_case "entities" `Quick test_entities;
    Alcotest.test_case "cdata" `Quick test_cdata;
    Alcotest.test_case "comment and pi" `Quick test_comment_pi;
    Alcotest.test_case "namespaces" `Quick test_namespaces;
    Alcotest.test_case "whitespace modes" `Quick test_whitespace_strip_preserve;
    Alcotest.test_case "doctype skipped" `Quick test_doctype_skipped;
    Alcotest.test_case "self closing" `Quick test_self_closing;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "escaping" `Quick test_escaping;
    Alcotest.test_case "indent" `Quick test_indent;
    Alcotest.test_case "tree parser" `Quick test_tree_parser;
    Test_util.qcheck_case ~count:100 "serialize/parse fixed point" arb_doc
      prop_roundtrip;
  ]
