(* Automatic index selection (rewriter rule 7) and the session's
   compiled-plan cache: pushdown firing conditions, probe/scan result
   agreement, epoch-based invalidation, index maintenance under
   updates, and the index-scan bound modes. *)

open Sedna_xquery

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* a database pre-loaded with the library workload document "lib" *)
let with_library ?(books = 200) f =
  Test_util.with_db (fun db ->
      let events = Sedna_workloads.Generators.library ~books () in
      ignore (Test_util.load_events db "lib" events);
      f db)

let create_price_index db =
  ignore
    (Test_util.exec db
       {|CREATE INDEX "price" ON doc("lib")/library/book BY price AS xs:integer|})

let create_year_index db =
  ignore
    (Test_util.exec db
       {|CREATE INDEX "yr" ON doc("lib")/library/book BY @year AS xs:string|})

(* how many Index_probe nodes the optimizer produces for [q] *)
let probes_in ?(opts = Rewriter.default_options) db q =
  let _prolog, e = Xq_parser.parse_query q in
  Rewriter.count_index_probes
    (Rewriter.rewrite_with ~catalog:(Sedna_core.Database.catalog db) opts e)

(* ---- rewriter-level: when does rule 7 fire? ------------------------ *)

let test_rewrite_fires () =
  with_library (fun db ->
      create_price_index db;
      create_year_index db;
      (* element key, both comparison orders *)
      check_int "eq" 1 (probes_in db {|doc("lib")/library/book[price = 50]|});
      check_int "eq flipped" 1
        (probes_in db {|doc("lib")/library/book[50 = price]|});
      check_int "ge" 1 (probes_in db {|doc("lib")/library/book[price >= 80]|});
      check_int "gt" 1 (probes_in db {|doc("lib")/library/book[price > 80]|});
      (* LE/LT on a number index are unsound (untyped keys order as NaN,
         which sorts below every number) — must stay a scan *)
      check_int "le number stays scan" 0
        (probes_in db {|doc("lib")/library/book[price <= 30]|});
      check_int "lt number stays scan" 0
        (probes_in db {|doc("lib")/library/book[price < 30]|});
      (* attribute key on a string index: all five modes allowed *)
      check_int "attr eq" 1
        (probes_in db {|doc("lib")/library/book[@year = "2001"]|});
      check_int "attr le" 1
        (probes_in db {|doc("lib")/library/book[@year <= "2001"]|});
      (* probe step in the middle of a longer path *)
      check_int "suffix steps" 1
        (probes_in db {|doc("lib")/library/book[price = 50]/title|});
      (* descendant step (rule 2 combines //book first) *)
      check_int "descendant" 1 (probes_in db {|doc("lib")//book[price = 50]|});
      (* positional key expressions depend on the predicate's context:
         the probe would evaluate them once at pos=1/size=1 *)
      check_int "position() key stays scan" 0
        (probes_in db {|doc("lib")/library/book[price = position()]|});
      check_int "last() key stays scan" 0
        (probes_in db {|doc("lib")/library/book[price = last()]|});
      (* non-key path, unknown doc, ablation, cardinality gate *)
      check_int "no index on title" 0
        (probes_in db {|doc("lib")/library/book[title = "x"]|});
      check_int "unknown doc" 0
        (probes_in db {|doc("nope")/library/book[price = 50]|});
      check_int "ablation" 0
        (probes_in db
           ~opts:{ Rewriter.default_options with use_indexes = false }
           {|doc("lib")/library/book[price = 50]|});
      check_int "cardinality gate" 0
        (probes_in db
           ~opts:{ Rewriter.default_options with index_min_count = 1_000_000 }
           {|doc("lib")/library/book[price = 50]|});
      (* a probe nested in the key expression also appears in the
         residual predicate and the fallback path: outer + 3 copies *)
      check_int "nested probes counted" 4
        (probes_in db
           {|doc("lib")/library/book[price = doc("lib")/library/book[@year = "2001"]/price]|}))

(* ---- executor-level: probe results = scan results ------------------ *)

let test_probe_agrees_with_scan () =
  with_library (fun db ->
      create_price_index db;
      create_year_index db;
      let s_idx = Sedna_db.Session.connect db in
      let s_scan = Sedna_db.Session.connect db in
      Sedna_db.Session.set_rewriter_options s_scan
        { Rewriter.default_options with use_indexes = false };
      let agree ?(expect_probe = true) q =
        let before = Sedna_util.Counters.get Sedna_util.Counters.index_probe in
        let via_index = Sedna_db.Session.execute_string s_idx q in
        let after = Sedna_util.Counters.get Sedna_util.Counters.index_probe in
        let via_scan = Sedna_db.Session.execute_string s_scan q in
        check_str q via_scan via_index;
        Alcotest.(check bool)
          (q ^ " used the index") expect_probe
          (after > before)
      in
      agree {|count(doc("lib")/library/book[price = 42])|};
      agree {|count(doc("lib")/library/book[price >= 80])|};
      agree {|count(doc("lib")/library/book[price > 80])|};
      agree {|count(doc("lib")//book[price = 42])|};
      (* multi-key probe: results are deduplicated and doc-ordered *)
      agree {|count(doc("lib")/library/book[price = (15, 16)])|};
      (* suffix steps after the probe, serialized in document order *)
      agree {|doc("lib")/library/book[price = 42]/title|};
      agree {|count(doc("lib")/library/book[@year = "2001"])|};
      agree {|count(doc("lib")/library/book[@year >= "2010"])|};
      agree {|count(doc("lib")/library/book[@year <= "2001"])|};
      (* number LE keeps the sequential plan but stays correct *)
      agree ~expect_probe:false
        {|count(doc("lib")/library/book[price <= 30])|};
      (* positional key: both sessions must run the sequential plan *)
      agree ~expect_probe:false
        {|count(doc("lib")/library/book[price = position()])|};
      agree ~expect_probe:false
        {|count(doc("lib")/library/book[price = last()])|};
      (* empty result through the probe *)
      agree {|count(doc("lib")/library/book[price = 7777])|})

(* ---- plan cache: hits, misses, epoch invalidation ------------------ *)

let test_plan_cache_hits () =
  with_library (fun db ->
      let s = Sedna_db.Session.connect db in
      let q = {|count(doc("lib")/library/book[price >= 90])|} in
      let r1 = Sedna_db.Session.execute_string s q in
      check_int "first run misses" 0 (fst (Sedna_db.Session.plan_cache_stats s));
      let r2 = Sedna_db.Session.execute_string s q in
      let r3 = Sedna_db.Session.execute_string s q in
      check_str "cached result equal" r1 r2;
      check_str "cached result equal" r1 r3;
      let hits, misses = Sedna_db.Session.plan_cache_stats s in
      check_int "hits" 2 hits;
      check_int "misses" 1 misses;
      (* clearing the cache forces a recompile *)
      Sedna_db.Session.clear_plan_cache s;
      ignore (Sedna_db.Session.execute_string s q);
      let _, misses' = Sedna_db.Session.plan_cache_stats s in
      check_int "miss after clear" (misses + 1) misses';
      (* changing rewriter options also drops the cache *)
      Sedna_db.Session.set_rewriter_options s Rewriter.default_options;
      ignore (Sedna_db.Session.execute_string s q);
      let _, misses'' = Sedna_db.Session.plan_cache_stats s in
      check_int "miss after option change" (misses' + 1) misses'')

let test_ddl_invalidates_plan () =
  with_library (fun db ->
      let s = Sedna_db.Session.connect db in
      let q = {|count(doc("lib")/library/book[price = 42])|} in
      let probe_count () =
        Sedna_util.Counters.get Sedna_util.Counters.index_probe
      in
      let r_scan = Sedna_db.Session.execute_string s q in
      ignore (Sedna_db.Session.execute_string s q);
      check_int "warm before DDL" 1 (fst (Sedna_db.Session.plan_cache_stats s));
      (* no index yet: the cached plan is a scan *)
      let before = probe_count () in
      ignore (Sedna_db.Session.execute_string s q);
      check_int "no probe without index" before (probe_count ());
      (* CREATE INDEX bumps the catalog epoch: the stale scan plan must
         not be reused, and the recompiled plan must use the index *)
      ignore
        (Sedna_db.Session.execute_string s
           {|CREATE INDEX "price" ON doc("lib")/library/book BY price AS xs:integer|});
      let hits_before, misses_before = Sedna_db.Session.plan_cache_stats s in
      let before = probe_count () in
      let r_idx = Sedna_db.Session.execute_string s q in
      let hits_after, misses_after = Sedna_db.Session.plan_cache_stats s in
      check_str "same answer after recompile" r_scan r_idx;
      check_int "stale plan not reused" hits_before hits_after;
      check_int "recompiled" (misses_before + 1) misses_after;
      Alcotest.(check bool) "new plan probes the index" true
        (probe_count () > before);
      (* the probe plan is itself cached and keeps probing *)
      let before = probe_count () in
      ignore (Sedna_db.Session.execute_string s q);
      Alcotest.(check bool) "cached probe plan" true (probe_count () > before);
      check_int "hit on probe plan" (hits_after + 1)
        (fst (Sedna_db.Session.plan_cache_stats s));
      (* DROP INDEX bumps the epoch again: back to a scan, same answer *)
      ignore (Sedna_db.Session.execute_string s {|DROP INDEX "price"|});
      let before = probe_count () in
      let r_back = Sedna_db.Session.execute_string s q in
      check_str "same answer after drop" r_scan r_back;
      check_int "no probe after drop" before (probe_count ()))

(* ---- index maintenance under a cached probe plan ------------------- *)

let test_maintenance_under_updates () =
  with_library (fun db ->
      create_price_index db;
      let s = Sedna_db.Session.connect db in
      let s_scan = Sedna_db.Session.connect db in
      Sedna_db.Session.set_rewriter_options s_scan
        { Rewriter.default_options with use_indexes = false };
      let q = {|count(doc("lib")/library/book[price = 7777])|} in
      check_str "initially empty" "0" (Sedna_db.Session.execute_string s q);
      (* inserting a book of an existing shape adds no schema node, so
         the epoch stays put and the cached plan is reused — it must
         still see the new entry through the maintained index *)
      ignore
        (Sedna_db.Session.execute_string s
           {|UPDATE insert <book><title>New</title><price>7777</price></book> into doc("lib")/library|});
      let before_hits = fst (Sedna_db.Session.plan_cache_stats s) in
      check_str "cached plan sees insert" "1"
        (Sedna_db.Session.execute_string s q);
      check_int "reused cached plan" (before_hits + 1)
        (fst (Sedna_db.Session.plan_cache_stats s));
      check_str "scan agrees" "1" (Sedna_db.Session.execute_string s_scan q);
      (* deleting through an indexed predicate removes the entries *)
      ignore
        (Sedna_db.Session.execute_string s
           {|UPDATE delete doc("lib")/library/book[price = 7777]|});
      check_str "deleted" "0" (Sedna_db.Session.execute_string s q);
      check_str "scan agrees" "0" (Sedna_db.Session.execute_string s_scan q);
      (* replace changes a key in place *)
      ignore
        (Sedna_db.Session.execute_string s
           {|UPDATE insert <book><title>K</title><price>8888</price></book> into doc("lib")/library|});
      ignore
        (Sedna_db.Session.execute_string s
           {|UPDATE replace $p in doc("lib")/library/book[price = 8888]/price with <p>9999</p>|});
      check_str "old key gone" "0"
        (Sedna_db.Session.execute_string s
           {|count(doc("lib")/library/book[price = 8888])|}))

(* A scan plan compiled below the cardinality gate must not be reused
   forever on a growing document: a schema-node population crossing a
   power-of-two boundary bumps the catalog epoch, so the next run
   recompiles and re-evaluates the gate. *)
let test_growth_reenables_pushdown () =
  Test_util.with_db (fun db ->
      let xml =
        "<items>"
        ^ String.concat ""
            (List.init 10 (fun i -> Printf.sprintf "<item><v>%d</v></item>" i))
        ^ "</items>"
      in
      ignore (Test_util.load db "g" xml);
      ignore
        (Test_util.exec db
           {|CREATE INDEX "gv" ON doc("g")/items/item BY v AS xs:integer|});
      let s = Sedna_db.Session.connect db in
      let q = {|count(doc("g")/items/item[v = 3])|} in
      let probe_count () =
        Sedna_util.Counters.get Sedna_util.Counters.index_probe
      in
      (* 10 items < index_min_count (16): the cached plan is a scan *)
      let before = probe_count () in
      check_str "below gate" "1" (Sedna_db.Session.execute_string s q);
      ignore (Sedna_db.Session.execute_string s q);
      check_int "scan below gate" before (probe_count ());
      check_int "scan plan cached" 1 (fst (Sedna_db.Session.plan_cache_stats s));
      (* grow past the gate: the item population crossing 16 bumps the
         epoch, invalidating the cached scan *)
      for i = 10 to 16 do
        ignore
          (Sedna_db.Session.execute_string s
             (Printf.sprintf
                {|UPDATE insert <item><v>%d</v></item> into doc("g")/items|} i))
      done;
      let before = probe_count () in
      check_str "after growth" "1" (Sedna_db.Session.execute_string s q);
      Alcotest.(check bool) "grown document probes the index" true
        (probe_count () > before))

(* ---- index-scan bound modes (string and numeric keys) -------------- *)

let test_index_scan_modes_string () =
  Test_util.with_db (fun db ->
      ignore
        (Test_util.load db "f"
           {|<items><item><nm>apple</nm></item><item><nm>pear</nm></item><item><nm>apple</nm></item><item><nm>banana</nm></item></items>|});
      ignore
        (Test_util.exec db
           {|CREATE INDEX "nm" ON doc("f")/items/item BY nm AS xs:string|});
      let count q = Test_util.exec db (Printf.sprintf "count(%s)" q) in
      (* duplicate keys *)
      check_str "eq dup" "2" (count {|index-scan("nm", "apple")|});
      check_str "eq dup explicit" "2" (count {|index-scan("nm", "apple", "EQ")|});
      check_str "eq single" "1" (count {|index-scan("nm", "pear")|});
      check_str "eq absent" "0" (count {|index-scan("nm", "mango")|});
      (* inclusive bounds *)
      check_str "ge" "2" (count {|index-scan("nm", "banana", "GE")|});
      check_str "le" "3" (count {|index-scan("nm", "banana", "LE")|});
      check_str "ge all" "4" (count {|index-scan("nm", "a", "GE")|});
      (* empty ranges *)
      check_str "ge empty" "0" (count {|index-scan("nm", "zzz", "GE")|});
      check_str "le empty" "0" (count {|index-scan("nm", "a", "LE")|}))

let test_index_scan_modes_number () =
  Test_util.with_db (fun db ->
      ignore
        (Test_util.load db "ps"
           {|<ps><p><v>1</v></p><p><v>5</v></p><p><v>5</v></p><p><v>9</v></p></ps>|});
      ignore
        (Test_util.exec db
           {|CREATE INDEX "pv" ON doc("ps")/ps/p BY v AS xs:integer|});
      let count q = Test_util.exec db (Printf.sprintf "count(%s)" q) in
      check_str "eq dup" "2" (count {|index-scan("pv", 5)|});
      check_str "eq absent" "0" (count {|index-scan("pv", 4)|});
      check_str "ge" "3" (count {|index-scan("pv", 5, "GE")|});
      check_str "le" "3" (count {|index-scan("pv", 5, "LE")|});
      check_str "ge all" "4" (count {|index-scan("pv", 0, "GE")|});
      check_str "ge empty" "0" (count {|index-scan("pv", 100, "GE")|});
      check_str "le empty" "0" (count {|index-scan("pv", 0, "LE")|}))

let suite =
  [
    Alcotest.test_case "rule 7 firing conditions" `Quick test_rewrite_fires;
    Alcotest.test_case "probe agrees with scan" `Quick
      test_probe_agrees_with_scan;
    Alcotest.test_case "plan cache hits and misses" `Quick test_plan_cache_hits;
    Alcotest.test_case "DDL invalidates cached plans" `Quick
      test_ddl_invalidates_plan;
    Alcotest.test_case "index maintenance under cached plans" `Quick
      test_maintenance_under_updates;
    Alcotest.test_case "growth past the gate re-enables pushdown" `Quick
      test_growth_reenables_pushdown;
    Alcotest.test_case "index-scan bound modes (string)" `Quick
      test_index_scan_modes_string;
    Alcotest.test_case "index-scan bound modes (number)" `Quick
      test_index_scan_modes_number;
  ]
