(* XQuery parser and optimizing-rewriter tests (paper §5.1). *)

module Ast = Sedna_xquery.Xq_ast
module P = Sedna_xquery.Xq_parser
module R = Sedna_xquery.Rewriter

let parse s = snd (P.parse_query s)

let parse_stmt s = P.parse_statement s

let test_literals () =
  (match parse "42" with Ast.Int_lit 42 -> () | _ -> Alcotest.fail "int");
  (match parse "3.25" with Ast.Dbl_lit f -> Alcotest.(check (float 0.0001)) "dec" 3.25 f | _ -> Alcotest.fail "dec");
  (match parse {|"hi ""there"""|} with
   | Ast.Str_lit s -> Alcotest.(check string) "str" "hi \"there\"" s
   | _ -> Alcotest.fail "str");
  match parse "()" with Ast.Empty_seq -> () | _ -> Alcotest.fail "empty"

let test_arith_precedence () =
  match parse "1 + 2 * 3" with
  | Ast.Binop (Ast.Add, Ast.Int_lit 1, Ast.Binop (Ast.Mul, Ast.Int_lit 2, Ast.Int_lit 3)) -> ()
  | _ -> Alcotest.fail "precedence broken"

let test_comparison_kinds () =
  (match parse "1 = 2" with Ast.Binop (Ast.Gen_eq, _, _) -> () | _ -> Alcotest.fail "=");
  (match parse "1 eq 2" with Ast.Binop (Ast.Eq, _, _) -> () | _ -> Alcotest.fail "eq");
  (match parse "$a is $b" with Ast.Binop (Ast.Is, _, _) -> () | _ -> Alcotest.fail "is");
  match parse "$a << $b" with Ast.Binop (Ast.Precedes, _, _) -> () | _ -> Alcotest.fail "<<"

let test_path_parse () =
  match parse {|doc("d")/a//b[@x=1]/text()|} with
  | Ast.Path (Ast.Call (_, [ Ast.Str_lit "d" ]), steps) ->
    Alcotest.(check int) "4 steps (// expands)" 4 (List.length steps);
    (match List.nth steps 1 with
     | { Ast.axis = Ast.Descendant_or_self; test = Ast.Kind_any; preds = [] } -> ()
     | _ -> Alcotest.fail "// expansion");
    (match List.nth steps 2 with
     | { Ast.axis = Ast.Child; test = Ast.Name_test _; preds = [ _ ] } -> ()
     | _ -> Alcotest.fail "predicate step");
    (match List.nth steps 3 with
     | { Ast.test = Ast.Kind_text; _ } -> ()
     | _ -> Alcotest.fail "text() test")
  | _ -> Alcotest.fail "path shape"

let test_explicit_axes () =
  match parse "$n/ancestor-or-self::*/following-sibling::x" with
  | Ast.Path (Ast.Var "n",
              [ { Ast.axis = Ast.Ancestor_or_self; test = Ast.Wildcard; _ };
                { Ast.axis = Ast.Following_sibling; _ } ]) -> ()
  | _ -> Alcotest.fail "axes"

let test_flwor_parse () =
  match parse "for $x at $i in (1,2), $y in (3) let $z := $x where $x > 1 order by $y descending return $z" with
  | Ast.Flwor ([ Ast.For [ ("x", Some "i", _); ("y", None, _) ];
                 Ast.Let [ ("z", Ast.Var "x") ];
                 Ast.Where _;
                 Ast.Order_by [ (_, Ast.Descending) ] ],
               Ast.Var "z") -> ()
  | _ -> Alcotest.fail "flwor shape"

let test_constructor_parse () =
  match parse {|<a x="1{$v}2"><b/>{$c}tail</a>|} with
  | Ast.Elem_constr (n, [ att ], content) ->
    Alcotest.(check string) "name" "a" (Sedna_util.Xname.local n);
    Alcotest.(check int) "attr parts" 3 (List.length att.Ast.attr_value);
    Alcotest.(check int) "content parts" 3 (List.length content)
  | _ -> Alcotest.fail "constructor"

let test_if_quantified () =
  (match parse "if ($a) then 1 else 2" with Ast.If _ -> () | _ -> Alcotest.fail "if");
  match parse "every $x in $s satisfies $x > 0" with
  | Ast.Quantified (Ast.Every_q, _, _) -> ()
  | _ -> Alcotest.fail "every"

let test_prolog_parse () =
  let p, _ = P.parse_query
      {|declare namespace foo = "urn:foo";
        declare variable $v := 10;
        declare function local:f($a, $b) { $a + $b };
        local:f($v, 1)|}
  in
  Alcotest.(check int) "ns" 1 (List.length p.Ast.namespaces);
  Alcotest.(check int) "vars" 1 (List.length p.Ast.variables);
  Alcotest.(check int) "funs" 1 (List.length p.Ast.functions)

let test_update_parse () =
  (match parse_stmt {|UPDATE insert <x/> into doc("d")/a|} with
   | Ast.Update (_, Ast.Insert_into (_, _)) -> ()
   | _ -> Alcotest.fail "insert into");
  (match parse_stmt {|UPDATE delete doc("d")//junk|} with
   | Ast.Update (_, Ast.Delete _) -> ()
   | _ -> Alcotest.fail "delete");
  (match parse_stmt {|UPDATE replace $x in doc("d")//v with <v>{$x}</v>|} with
   | Ast.Update (_, Ast.Replace ("x", _, _)) -> ()
   | _ -> Alcotest.fail "replace");
  match parse_stmt {|UPDATE rename doc("d")//a on b|} with
  | Ast.Update (_, Ast.Rename (_, n)) ->
    Alcotest.(check string) "new name" "b" (Sedna_util.Xname.local n)
  | _ -> Alcotest.fail "rename"

let test_ddl_parse () =
  (match parse_stmt {|CREATE DOCUMENT "d"|} with
   | Ast.Ddl (Ast.Create_document "d") -> ()
   | _ -> Alcotest.fail "create doc");
  (match parse_stmt {|CREATE INDEX "i" ON doc("d")/a/b BY c/d AS xs:string|} with
   | Ast.Ddl (Ast.Create_index { ix_name = "i"; ix_doc = "d"; ix_on = [ "a"; "b" ];
                                 ix_by = [ "c"; "d" ]; ix_type = "xs:string" }) -> ()
   | Ast.Ddl (Ast.Create_index { ix_on; ix_by; _ }) ->
     Alcotest.failf "index parts: on=[%s] by=[%s]"
       (String.concat ";" ix_on) (String.concat ";" ix_by)
   | _ -> Alcotest.fail "create index");
  match parse_stmt {|DROP COLLECTION "c"|} with
  | Ast.Ddl (Ast.Drop_collection "c") -> ()
  | _ -> Alcotest.fail "drop collection"

let test_comments_nested () =
  match parse "(: outer (: inner :) still :) 5" with
  | Ast.Int_lit 5 -> ()
  | _ -> Alcotest.fail "nested comments"

let expect_parse_error s =
  match parse s with
  | exception Sedna_util.Error.Sedna_error (Sedna_util.Error.Xquery_parse, _) -> ()
  | _ -> Alcotest.failf "expected parse error: %s" s

let test_parse_errors () =
  expect_parse_error "for $x in";
  expect_parse_error "1 +";
  expect_parse_error "<a></b>";
  expect_parse_error "doc(";
  expect_parse_error "let $x := 1";
  expect_parse_error "if (1) then 2"

(* ---- static analysis ---------------------------------------------------- *)

let expect_static_error q =
  let p, e = P.parse_query q in
  match Sedna_xquery.Static.analyse p e with
  | exception Sedna_util.Error.Sedna_error (Sedna_util.Error.Xquery_static, _) -> ()
  | _ -> Alcotest.failf "expected static error: %s" q

let test_static () =
  expect_static_error "$undefined";
  expect_static_error "unknown-function(1)";
  expect_static_error "count(1, 2)";
  expect_static_error "pfx:thing(1)";
  (* valid ones pass *)
  let p, e = P.parse_query "for $x in (1,2) return $x + count(($x))" in
  ignore (Sedna_xquery.Static.analyse p e)

(* ---- rewriter ------------------------------------------------------------ *)

let test_ddo_insert_and_remove () =
  let e = parse {|doc("d")/a/b/c|} in
  let normalized = R.normalize e in
  Alcotest.(check int) "normalization adds DDO" 1 (R.count_ddo normalized);
  (* child-only path from a document: provably ordered, DDO removed...
     and the whole thing collapses to a schema path *)
  (match R.optimize e with
   | Ast.Schema_path ("d", steps) ->
     Alcotest.(check int) "3 named steps" 3 (List.length steps)
   | other -> Alcotest.failf "expected Schema_path, got ddo-count %d" (R.count_ddo other));
  (* with structural extraction off, the DDO is still removed *)
  let opts = { R.default_options with extract_structural = false } in
  let e' = R.rewrite_with opts e in
  Alcotest.(check int) "ddo removed" 0 (R.count_ddo e')

let test_ddo_kept_when_needed () =
  (* parent steps can break document order: DDO must stay *)
  let e = parse {|doc("d")//b/..|} in
  let opts = { R.default_options with extract_structural = false } in
  Alcotest.(check bool) "ddo kept" true (R.count_ddo (R.rewrite_with opts e) >= 1)

let test_ddo_removed_in_ebv () =
  (* inside exists(), order and duplicates do not matter *)
  let e = parse {|exists(doc("d")//b/..)|} in
  let opts = { R.default_options with extract_structural = false } in
  Alcotest.(check int) "ddo dropped in ebv" 0 (R.count_ddo (R.rewrite_with opts e))

let test_descendant_combining () =
  let e = parse {|doc("d")//para|} in
  let opts = { R.default_options with extract_structural = false } in
  (match R.rewrite_with opts e with
   | Ast.Path (_, [ { Ast.axis = Ast.Descendant; test = Ast.Name_test n; _ } ]) ->
     Alcotest.(check string) "combined" "para" (Sedna_util.Xname.local n)
   | Ast.Ddo (Ast.Path (_, [ { Ast.axis = Ast.Descendant; _ } ])) -> ()
   | _ -> Alcotest.fail "not combined");
  (* the famous counter-example: //para[1] must NOT combine *)
  let e2 = parse {|doc("d")//para[1]|} in
  match R.rewrite_with opts e2 with
  | Ast.Path (_, steps) | Ast.Ddo (Ast.Path (_, steps)) ->
    Alcotest.(check int) "two steps kept" 2 (List.length steps);
    (match List.hd steps with
     | { Ast.axis = Ast.Descendant_or_self; _ } -> ()
     | _ -> Alcotest.fail "descendant-or-self step lost")
  | _ -> Alcotest.fail "unexpected shape"

let test_structural_extraction () =
  (match R.optimize (parse {|doc("d")/site/people/person|}) with
   | Ast.Schema_path ("d", [ (Ast.Child, _); (Ast.Child, _); (Ast.Child, _) ]) -> ()
   | _ -> Alcotest.fail "pure structural path not extracted");
  (* predicates stop extraction *)
  match R.optimize (parse {|doc("d")/site/people/person[1]|}) with
  | Ast.Schema_path _ -> Alcotest.fail "extracted despite predicate"
  | _ -> ()

let test_for_hoisting () =
  let e = parse {|for $x in doc("d")//a for $y in doc("d")//b return $x|} in
  (match R.optimize e with
   | Ast.Flwor (Ast.Let [ (tmp, _) ] :: _, _) ->
     Alcotest.(check bool) "fresh name" true (String.length tmp > 0)
   | _ -> Alcotest.fail "independent inner for was not hoisted");
  (* dependent inner for must not be hoisted *)
  let e2 = parse {|for $x in doc("d")//a for $y in $x/b return $y|} in
  match R.optimize e2 with
  | Ast.Flwor (Ast.For _ :: _, _) -> ()
  | _ -> Alcotest.fail "dependent for was hoisted"

let test_virtual_marking () =
  (match R.optimize (parse {|<r>{doc("d")//x}</r>|}) with
   | Ast.Virtual_constr _ -> ()
   | _ -> Alcotest.fail "top-level constructor not virtual");
  (* a constructor used as a path start must not be virtual *)
  match R.optimize (parse {|<r><a/></r>/a|}) with
  | Ast.Virtual_constr _ -> Alcotest.fail "navigated constructor marked virtual"
  | _ -> ()

let test_not_rewrite () =
  match R.optimize (parse "not(1 = 2)") with
  | Ast.Not _ -> ()
  | _ -> Alcotest.fail "fn:not not rewritten"

let test_function_inlining () =
  let parse_q s = P.parse_query s in
  let has_call e =
    let found = ref false in
    let rec go e =
      (match e with
       | Ast.Call (n, _) when Sedna_util.Xname.prefix n = "local" -> found := true
       | _ -> ());
      ignore (R.map_expr (fun sub -> go sub; sub) e)
    in
    go e;
    !found
  in
  (* simple function disappears *)
  let p, e = parse_q {|declare function local:double($x) { $x * 2 }; local:double(21)|} in
  let e' = R.inline_functions p.Ast.functions e in
  Alcotest.(check bool) "call inlined away" false (has_call e');
  (* recursive function is kept as a call *)
  let p2, e2 =
    parse_q
      {|declare function local:f($n) { if ($n = 0) then 0 else local:f($n - 1) };
        local:f(3)|}
  in
  let e2' = R.inline_functions p2.Ast.functions e2 in
  Alcotest.(check bool) "recursive call kept" true (has_call e2');
  (* mutual recursion is kept *)
  let p3, e3 =
    parse_q
      {|declare function local:a($n) { local:b($n) };
        declare function local:b($n) { local:a($n) };
        local:a(1)|}
  in
  let e3' = R.inline_functions p3.Ast.functions e3 in
  Alcotest.(check bool) "mutually recursive kept" true (has_call e3');
  (* nested non-recursive chains inline through *)
  let p4, e4 =
    parse_q
      {|declare function local:inc($x) { $x + 1 };
        declare function local:inc2($x) { local:inc(local:inc($x)) };
        local:inc2(5)|}
  in
  let e4' = R.inline_functions p4.Ast.functions e4 in
  Alcotest.(check bool) "chain fully inlined" false (has_call e4')

let test_inlining_preserves_results () =
  Test_util.with_doc {|<r><v>1</v><v>2</v><v>3</v></r>|} (fun db _run ->
      let q =
        {|declare function local:total($s) { sum(for $v in $s return xs:integer(string($v))) };
          local:total(doc("d")//v)|}
      in
      let s_on = Sedna_db.Session.connect db in
      let s_off = Sedna_db.Session.connect db in
      Sedna_db.Session.set_rewriter_options s_off
        { Sedna_xquery.Rewriter.default_options with
          Sedna_xquery.Rewriter.inline_functions = false };
      Alcotest.(check string) "same result"
        (Sedna_db.Session.execute_string s_off q)
        (Sedna_db.Session.execute_string s_on q);
      Alcotest.(check string) "and it is right" "6"
        (Sedna_db.Session.execute_string s_on q))

let test_uses_position () =
  Alcotest.(check bool) "position()" true (R.uses_position (parse "position() > 2"));
  Alcotest.(check bool) "last()" true (R.uses_position (parse "last()"));
  Alcotest.(check bool) "plain" false (R.uses_position (parse {|@x = "1"|}))

(* ---- comparison-semantics regressions (XQuery F&O) ------------------- *)

module Xdm = Sedna_engine.Xdm

let test_nan_comparisons () =
  let nan = Xdm.ADbl Float.nan in
  (* unit level: NaN is unordered against everything, itself included *)
  Alcotest.(check bool) "NaN vs NaN" true (Xdm.value_compare nan nan = None);
  Alcotest.(check bool) "NaN vs 1.0" true
    (Xdm.value_compare nan (Xdm.ADbl 1.0) = None);
  Alcotest.(check bool) "1.0 vs NaN" true
    (Xdm.value_compare (Xdm.ADbl 1.0) nan = None);
  Alcotest.(check bool) "int vs NaN" true
    (Xdm.value_compare (Xdm.AInt 3) nan = None);
  Alcotest.(check bool) "untyped number vs NaN" true
    (Xdm.general_pair_compare (Xdm.AUntyped "7") nan = None);
  Alcotest.(check bool) "nan_pair recognizes the case" true
    (Xdm.nan_pair nan (Xdm.AInt 3));
  Alcotest.(check bool) "nan_pair rejects strings" false
    (Xdm.nan_pair nan (Xdm.AStr "x"));
  (* end to end: eq/lt/le/gt/ge with NaN are false, ne alone is true *)
  Test_util.with_doc "<r><p>1</p></r>" (fun _db run ->
      Alcotest.(check string) "NaN eq NaN" "false"
        (run {|number("x") eq number("y")|});
      Alcotest.(check string) "NaN ne NaN" "true"
        (run {|number("x") ne number("y")|});
      Alcotest.(check string) "NaN lt 1" "false" (run {|number("x") lt 1.0|});
      Alcotest.(check string) "NaN ge 1" "false" (run {|number("x") ge 1.0|});
      Alcotest.(check string) "general = with NaN" "false"
        (run {|doc("d")//p = number("x")|});
      Alcotest.(check string) "general != with NaN" "true"
        (run {|doc("d")//p != number("x")|}))

let test_untyped_bool_cast () =
  (* unit level: the boolean lexical space, and FORG0001 outside it *)
  Alcotest.(check bool) "\"1\" = true" true
    (Xdm.general_pair_compare (Xdm.AUntyped "1") (Xdm.ABool true) = Some 0);
  Alcotest.(check bool) "\"true\" = true" true
    (Xdm.general_pair_compare (Xdm.AUntyped "true") (Xdm.ABool true) = Some 0);
  Alcotest.(check bool) "\"0\" = false" true
    (Xdm.general_pair_compare (Xdm.AUntyped "0") (Xdm.ABool false) = Some 0);
  Alcotest.(check bool) "\"0\" <> true" true
    (Xdm.general_pair_compare (Xdm.ABool true) (Xdm.AUntyped "0") <> Some 0);
  (match Xdm.general_pair_compare (Xdm.AUntyped "oops") (Xdm.ABool true) with
   | exception Sedna_util.Error.Sedna_error (Sedna_util.Error.Xquery_dynamic, _)
     -> ()
   | _ -> Alcotest.fail "garbage untyped vs boolean must raise FORG0001");
  (* end to end: attributes are untyped atomics *)
  Test_util.with_doc
    {|<r><a flag="1"/><b flag="true"/><c flag="0"/><d flag="oops"/></r>|}
    (fun _db run ->
      Alcotest.(check string) "\"1\" matches true()" "1"
        (run {|count(doc("d")//a[@flag = true()])|});
      Alcotest.(check string) "\"true\" matches true()" "1"
        (run {|count(doc("d")//b[@flag = true()])|});
      Alcotest.(check string) "\"0\" matches false()" "1"
        (run {|count(doc("d")//c[@flag = false()])|});
      match run {|count(doc("d")//d[@flag = true()])|} with
      | exception Sedna_util.Error.Sedna_error
          (Sedna_util.Error.Xquery_dynamic, _) -> ()
      | got -> Alcotest.failf "expected FORG0001, got %S" got)

let test_nan_index_probe () =
  Test_util.with_db (fun db ->
      ignore
        (Test_util.load db "d"
           {|<items><item><v>1</v></item><item><v>2</v></item></items>|});
      ignore
        (Test_util.exec db
           {|CREATE INDEX "nv" ON doc("d")/items/item BY v AS xs:integer|});
      (* a NaN key matches nothing: the B-tree's float order would
         otherwise return an arbitrary answer *)
      Alcotest.(check string) "index-scan NaN" "0"
        (Test_util.exec db {|count(index-scan("nv", number("x")))|});
      Alcotest.(check string) "probe predicate NaN" "0"
        (Test_util.exec db {|count(doc("d")/items/item[v = number("x")])|});
      Alcotest.(check string) "index intact for real keys" "1"
        (Test_util.exec db {|count(index-scan("nv", 2))|}))

let suite =
  [
    Alcotest.test_case "literals" `Quick test_literals;
    Alcotest.test_case "arithmetic precedence" `Quick test_arith_precedence;
    Alcotest.test_case "comparison kinds" `Quick test_comparison_kinds;
    Alcotest.test_case "path parse" `Quick test_path_parse;
    Alcotest.test_case "explicit axes" `Quick test_explicit_axes;
    Alcotest.test_case "flwor parse" `Quick test_flwor_parse;
    Alcotest.test_case "constructor parse" `Quick test_constructor_parse;
    Alcotest.test_case "if / quantified" `Quick test_if_quantified;
    Alcotest.test_case "prolog" `Quick test_prolog_parse;
    Alcotest.test_case "update statements" `Quick test_update_parse;
    Alcotest.test_case "ddl statements" `Quick test_ddl_parse;
    Alcotest.test_case "nested comments" `Quick test_comments_nested;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "static analysis" `Quick test_static;
    Alcotest.test_case "ddo insert/remove" `Quick test_ddo_insert_and_remove;
    Alcotest.test_case "ddo kept when needed" `Quick test_ddo_kept_when_needed;
    Alcotest.test_case "ddo removed in ebv" `Quick test_ddo_removed_in_ebv;
    Alcotest.test_case "descendant combining" `Quick test_descendant_combining;
    Alcotest.test_case "structural extraction" `Quick test_structural_extraction;
    Alcotest.test_case "for hoisting" `Quick test_for_hoisting;
    Alcotest.test_case "virtual marking" `Quick test_virtual_marking;
    Alcotest.test_case "fn:not rewrite" `Quick test_not_rewrite;
    Alcotest.test_case "function inlining" `Quick test_function_inlining;
    Alcotest.test_case "inlining preserves results" `Quick
      test_inlining_preserves_results;
    Alcotest.test_case "uses_position" `Quick test_uses_position;
    Alcotest.test_case "NaN comparisons" `Quick test_nan_comparisons;
    Alcotest.test_case "untyped to boolean cast" `Quick test_untyped_bool_cast;
    Alcotest.test_case "NaN index probe" `Quick test_nan_index_probe;
  ]
