(* Tests for the finer-granularity (hierarchical) locking extension —
   the future work announced in paper §6.2. *)

open Sedna_core
module H = Hier_lock

let lbl parent i = Sedna_nid.Nid.ordinal_child ~parent i
let root = Sedna_nid.Nid.root

let granted = function H.Granted -> true | _ -> false
let blocked = function H.Blocked _ -> true | _ -> false

let test_disjoint_subtrees_concurrent () =
  let t = H.create () in
  let a = lbl root 0 and b = lbl root 1 in
  (* two updaters in disjoint subtrees of the same document: both go —
     the concurrency gain over document-level S2PL *)
  Alcotest.(check bool) "t1 X on subtree a" true
    (granted (H.acquire_subtree t ~txn:1 ~doc:"d" ~label:a ~exclusive:true));
  Alcotest.(check bool) "t2 X on subtree b" true
    (granted (H.acquire_subtree t ~txn:2 ~doc:"d" ~label:b ~exclusive:true));
  (* both hold IX on the document *)
  Alcotest.(check int) "two doc-level intention locks" 2
    (List.length (H.doc_holders t "d"))

let test_nested_subtrees_conflict () =
  let t = H.create () in
  let a = lbl root 0 in
  let a_child = lbl a 0 in
  Alcotest.(check bool) "t1 X on a" true
    (granted (H.acquire_subtree t ~txn:1 ~doc:"d" ~label:a ~exclusive:true));
  Alcotest.(check bool) "t2 X inside a blocks" true
    (blocked (H.acquire_subtree t ~txn:2 ~doc:"d" ~label:a_child ~exclusive:true));
  Alcotest.(check bool) "t2 X on ancestor blocks too" true
    (blocked (H.acquire_subtree t ~txn:2 ~doc:"d" ~label:root ~exclusive:true))

let test_shared_overlap_ok () =
  let t = H.create () in
  let a = lbl root 0 in
  let a_child = lbl a 0 in
  Alcotest.(check bool) "t1 S on a" true
    (granted (H.acquire_subtree t ~txn:1 ~doc:"d" ~label:a ~exclusive:false));
  Alcotest.(check bool) "t2 S nested is fine" true
    (granted (H.acquire_subtree t ~txn:2 ~doc:"d" ~label:a_child ~exclusive:false));
  Alcotest.(check bool) "t3 X nested blocks" true
    (blocked (H.acquire_subtree t ~txn:3 ~doc:"d" ~label:a_child ~exclusive:true))

let test_document_lock_vs_subtrees () =
  let t = H.create () in
  let a = lbl root 0 in
  Alcotest.(check bool) "t1 X on subtree" true
    (granted (H.acquire_subtree t ~txn:1 ~doc:"d" ~label:a ~exclusive:true));
  (* whole-document X (e.g. DDL) must wait for the subtree updater *)
  Alcotest.(check bool) "t2 doc X blocks" true
    (blocked (H.acquire_doc t ~txn:2 ~doc:"d" ~mode:H.X));
  (* doc-level S blocks against IX holder *)
  Alcotest.(check bool) "t3 doc S blocks" true
    (blocked (H.acquire_doc t ~txn:3 ~doc:"d" ~mode:H.S));
  H.release_all t ~txn:1;
  Alcotest.(check bool) "t2 doc X after release" true
    (granted (H.acquire_doc t ~txn:2 ~doc:"d" ~mode:H.X))

let test_deadlock_detected () =
  let t = H.create () in
  let a = lbl root 0 and b = lbl root 1 in
  Alcotest.(check bool) "t1 X a" true
    (granted (H.acquire_subtree t ~txn:1 ~doc:"d" ~label:a ~exclusive:true));
  Alcotest.(check bool) "t2 X b" true
    (granted (H.acquire_subtree t ~txn:2 ~doc:"d" ~label:b ~exclusive:true));
  Alcotest.(check bool) "t1 waits for b" true
    (blocked (H.acquire_subtree t ~txn:1 ~doc:"d" ~label:b ~exclusive:true));
  (match H.acquire_subtree t ~txn:2 ~doc:"d" ~label:a ~exclusive:true with
   | H.Deadlock_detected -> ()
   | _ -> Alcotest.fail "deadlock not detected")

let test_three_txn_cycle () =
  let t = H.create () in
  let a = lbl root 0 and b = lbl root 1 and c = lbl root 2 in
  let x txn label = H.acquire_subtree t ~txn ~doc:"d" ~label ~exclusive:true in
  Alcotest.(check bool) "t1 X a" true (granted (x 1 a));
  Alcotest.(check bool) "t2 X b" true (granted (x 2 b));
  Alcotest.(check bool) "t3 X c" true (granted (x 3 c));
  (* t1 -> t2 -> t3 -> t1: only the last edge closes the cycle *)
  Alcotest.(check bool) "t1 waits for b" true (blocked (x 1 b));
  Alcotest.(check bool) "t2 waits for c" true (blocked (x 2 c));
  (match x 3 a with
   | H.Deadlock_detected -> ()
   | _ -> Alcotest.fail "three-way cycle not detected");
  (* aborting the victim breaks the cycle; the survivors drain in turn *)
  H.release_all t ~txn:3;
  Alcotest.(check bool) "t2 proceeds on c" true (granted (x 2 c));
  H.release_all t ~txn:2;
  Alcotest.(check bool) "t1 proceeds on b" true (granted (x 1 b));
  H.release_all t ~txn:1;
  Alcotest.(check int) "doc table drained" 0 (List.length (H.doc_holders t "d"));
  Alcotest.(check int) "subtree table drained" 0
    (List.length (H.subtree_locks t "d"))

let test_reacquire_is_idempotent () =
  let t = H.create () in
  Alcotest.(check bool) "doc X" true
    (granted (H.acquire_doc t ~txn:1 ~doc:"d" ~mode:H.X));
  Alcotest.(check bool) "doc X again" true
    (granted (H.acquire_doc t ~txn:1 ~doc:"d" ~mode:H.X));
  Alcotest.(check bool) "weaker IS folded in" true
    (granted (H.acquire_doc t ~txn:1 ~doc:"d" ~mode:H.IS));
  (* own subtree locks never self-conflict *)
  let a = lbl root 0 in
  Alcotest.(check bool) "own subtree" true
    (granted (H.acquire_subtree t ~txn:1 ~doc:"d" ~label:a ~exclusive:true))

let test_different_documents_independent () =
  let t = H.create () in
  Alcotest.(check bool) "t1 X doc1" true
    (granted (H.acquire_doc t ~txn:1 ~doc:"d1" ~mode:H.X));
  Alcotest.(check bool) "t2 X doc2" true
    (granted (H.acquire_doc t ~txn:2 ~doc:"d2" ~mode:H.X))

let suite =
  [
    Alcotest.test_case "disjoint subtrees run concurrently" `Quick
      test_disjoint_subtrees_concurrent;
    Alcotest.test_case "nested subtrees conflict" `Quick
      test_nested_subtrees_conflict;
    Alcotest.test_case "shared overlap allowed" `Quick test_shared_overlap_ok;
    Alcotest.test_case "document locks vs subtrees" `Quick
      test_document_lock_vs_subtrees;
    Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
    Alcotest.test_case "three-txn cycle" `Quick test_three_txn_cycle;
    Alcotest.test_case "reacquire idempotent" `Quick test_reacquire_is_idempotent;
    Alcotest.test_case "documents independent" `Quick
      test_different_documents_independent;
  ]
