(* Timing and reporting helpers shared by all experiments.

   Wall-clock measurements use repeated runs with a warmup and report
   the median; counter-based measurements (disk reads, buffer faults,
   fields updated) come from Sedna_util.Metrics snapshots/diffs and are
   exact — deltas, not resets, so the global totals survive.

   Besides the text output every experiment can [record] values; [main]
   writes them as one machine-readable JSON file at the end
   (BENCH_metrics.json, or $SEDNA_BENCH_JSON). *)

module Metrics = Sedna_util.Metrics

let time_once f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  (t1 -. t0, r)

(* median wall time over [runs] executions (after one warmup) *)
let time_median ?(runs = 5) f =
  ignore (f ());
  let samples =
    List.init runs (fun _ ->
        let d, _ = time_once f in
        d)
  in
  let sorted = List.sort compare samples in
  List.nth sorted (runs / 2)

let ms t = t *. 1000.0

let pf = Printf.printf

let header title claim =
  pf "\n==============================================================\n";
  pf "%s\n" title;
  pf "  claim: %s\n" claim;
  pf "--------------------------------------------------------------\n"

let row3 a b c = pf "  %-34s %14s %14s\n" a b c
let row4 a b c d = pf "  %-26s %12s %12s %14s\n" a b c d

(* quick mode: CI smoke runs with scaled-down populations *)
let quick () = Sys.getenv_opt "SEDNA_BENCH_QUICK" <> None

let fresh_db ?(buffer_frames = 1024) () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sedna-bench-%d-%f" (Unix.getpid ()) (Unix.gettimeofday ()))
  in
  if Sys.file_exists dir then ignore (Sys.command ("rm -rf " ^ Filename.quote dir));
  Sedna_core.Database.create ~buffer_frames dir

let load_events db name events =
  Sedna_core.Database.with_txn db (fun txn st ->
      Sedna_core.Database.lock_exn db txn ~doc:name
        ~mode:Sedna_core.Lock_mgr.Exclusive;
      Sedna_core.Loader.load_events st ~doc_name:name events)

let session ?opts db =
  let s = Sedna_db.Session.connect db in
  (match opts with
   | Some o -> Sedna_db.Session.set_rewriter_options s o
   | None -> ());
  s

let exec s q = Sedna_db.Session.execute_string s q

(* run under a cold buffer: drop every frame first, count disk reads *)
let cold_reads db f =
  ignore (Sedna_core.Buffer_mgr.flush_all (Sedna_core.Database.buffer db));
  Sedna_core.Buffer_mgr.drop_all (Sedna_core.Database.buffer db);
  let before = Sedna_util.Counters.get Sedna_util.Counters.page_reads in
  let r = f () in
  (Sedna_util.Counters.get Sedna_util.Counters.page_reads - before, r)

let counter_during name f =
  let before = Sedna_util.Counters.get name in
  let r = f () in
  (Sedna_util.Counters.get name - before, r)

(* every global counter that moved while [f] ran *)
let deltas_during f =
  let before = Metrics.snapshot ~zeros:true Metrics.global in
  let r = f () in
  let after = Metrics.snapshot ~zeros:true Metrics.global in
  (Metrics.diff ~before ~after, r)

(* ---- machine-readable metrics output -------------------------------- *)

let recorded : (string * Metrics.json) list ref = ref []

let record key j = recorded := (key, j) :: !recorded
let record_ms key seconds = record key (Metrics.Float (ms seconds))
let record_int key n = record key (Metrics.Int n)

let metrics_json_path () =
  Option.value (Sys.getenv_opt "SEDNA_BENCH_JSON") ~default:"BENCH_metrics.json"

(* One JSON document: everything the experiments recorded, plus the
   final global counters and registered histograms. *)
let write_metrics_json () =
  let doc =
    Metrics.Obj
      [
        ("quick", Metrics.Bool (quick ()));
        ("experiments", Metrics.Obj (List.rev !recorded));
        ( "counters",
          Metrics.Obj
            (List.map (fun (k, v) -> (k, Metrics.Int v)) (Sedna_util.Counters.snapshot ()))
        );
        ( "histograms",
          Metrics.Obj
            (List.map
               (fun h -> (Metrics.hist_name h, Metrics.hist_to_json h))
               (Metrics.histograms ())) );
      ]
  in
  let path = metrics_json_path () in
  let oc = open_out path in
  output_string oc (Metrics.json_to_string doc);
  output_char oc '\n';
  close_out oc;
  pf "\nmetrics json written to %s\n" path
