(* The benchmark harness: one experiment per figure/claim of the paper
   (see DESIGN.md §5 and EXPERIMENTS.md).  The paper has no quantitative
   tables, so each experiment measures the *claim* a design section
   makes, against an in-repo baseline where the paper names one.

     dune exec bench/main.exe            # all experiments
     dune exec bench/main.exe -- E7 E8   # a selection *)

open Bench_util

(* ------------------------------------------------------------------ *)
(* E1 — Figure 1: the full pipeline, end to end                        *)
(* ------------------------------------------------------------------ *)

let queries_e1 =
  [
    ("Q1 child path", {|count(doc("a")/site/regions/namerica/item)|});
    ("Q2 descendants", {|count(doc("a")//listitem)|});
    ("Q3 predicate", {|count(doc("a")//item[quantity > 3])|});
    ("Q4 flwor+sort",
     {|for $x in doc("a")/site/open_auctions/open_auction
       let $n := count($x/bidder) where $n > 3
       order by $n descending return string($x/@id)|});
    ("Q5 join",
     {|count(for $a in doc("a")/site/open_auctions/open_auction
             for $i in doc("a")//item[@id = string($a/itemref)]
             return $i)|});
    ("Q6 construct",
     {|<out>{for $p in doc("a")/site/people/person[address]
             return <e c="{string($p/address/city)}"/>}</out>|});
    ("Q7 aggregation", {|sum(doc("a")//increase)|});
  ]

let e1 () =
  header "E1  Figure 1 — architecture: full query pipeline"
    "parse -> static analysis -> rewrite -> execute works end-to-end; \
     rewriting pays for itself";
  let db = fresh_db () in
  let _, n =
    load_events db "a"
      (Sedna_workloads.Generators.auction ~items:250 ~people:200 ~auctions:120 ())
  in
  pf "  document: %d nodes\n\n" n;
  let s_opt = session db in
  let s_raw = session ~opts:Sedna_xquery.Rewriter.no_options db in
  row3 "query" "optimized" "no rewriter";
  List.iter
    (fun (name, q) ->
      let t_opt = time_median (fun () -> exec s_opt q) in
      let t_raw = time_median (fun () -> exec s_raw q) in
      record_ms (Printf.sprintf "e1.%s.optimized_ms" name) t_opt;
      record_ms (Printf.sprintf "e1.%s.raw_ms" name) t_raw;
      row3 name
        (Printf.sprintf "%.2f ms" (ms t_opt))
        (Printf.sprintf "%.2f ms" (ms t_raw)))
    queries_e1;
  Sedna_core.Database.close db

(* ------------------------------------------------------------------ *)
(* E2 — Figure 2 / §2: schema-driven vs subtree clustering             *)
(* ------------------------------------------------------------------ *)

let e2 () =
  header "E2  Figure 2 / §2 — clustering strategies"
    "schema clustering fetches fewer pages for selective paths; \
     subtree clustering wins when reconstructing a whole element";
  let events = Sedna_workloads.Generators.library ~books:3000 () in
  (* Sedna: small pool so that cold scans hit the disk counters *)
  let db = fresh_db ~buffer_frames:64 () in
  ignore (load_events db "lib" events);
  let subtree = Sedna_baselines.Subtree_store.of_events events in
  let s = session db in
  (* (a) selective scan: every title (one small field of every book) *)
  let sedna_reads, _ =
    cold_reads db (fun () -> exec s {|count(doc("lib")//title)|})
  in
  Sedna_baselines.Subtree_store.reset_touches subtree;
  let lib = Option.get (Sedna_baselines.Subtree_store.find_first_named subtree "library") in
  ignore (Sedna_baselines.Subtree_store.scan_descendants_named subtree lib "title");
  let subtree_touches = Sedna_baselines.Subtree_store.touches subtree in
  row3 "selective scan (//title)" "pages read" "";
  row3 "  sedna (schema clustering)" (string_of_int sedna_reads) "";
  row3 "  subtree clustering" (string_of_int subtree_touches) "";
  (* (b) whole-element reconstruction: serialize single books *)
  let sedna_rec, _ =
    cold_reads db (fun () ->
        for i = 1 to 20 do
          ignore
            (exec s (Printf.sprintf {|doc("lib")/library/book[%d]|} (i * 25)))
        done)
  in
  let books =
    Sedna_baselines.Subtree_store.scan_descendants_named subtree lib "book"
  in
  (* reconstruction cost proper: locating the books is not charged *)
  Sedna_baselines.Subtree_store.reset_touches subtree;
  List.iteri
    (fun i b ->
      if i mod 25 = 0 && i < 500 then
        ignore (Sedna_baselines.Subtree_store.subtree_string subtree b))
    books;
  let subtree_rec = Sedna_baselines.Subtree_store.touches subtree in
  pf "\n";
  row3 "reconstruct 20 whole books" "pages read" "";
  row3 "  sedna (schema clustering)" (string_of_int sedna_rec) "";
  row3 "  subtree clustering" (string_of_int subtree_rec) "";
  pf "\n  (expected shape: sedna << subtree on the scan; subtree <= sedna on\n";
  pf "   reconstruction — the paper's §2 trade-off)\n";
  Sedna_core.Database.close db

(* ------------------------------------------------------------------ *)
(* E3 — §2: pointer traversal vs relational structural joins           *)
(* ------------------------------------------------------------------ *)

let e3 () =
  header "E3  §2 — element inclusion: pointers vs structural joins"
    "direct-pointer traversal answers path steps faster than \
     label-interval containment joins over an edge table";
  let events =
    Sedna_workloads.Generators.auction ~items:800 ~people:400 ~auctions:400 ()
  in
  let db = fresh_db ~buffer_frames:128 () in
  ignore (load_events db "a" events);
  let rel = Sedna_baselines.Edge_rel.of_events events in
  let s = session db in
  let cases =
    [
      ("/site/regions/namerica/item",
       {|count(doc("a")/site/regions/namerica/item)|},
       [ Sedna_baselines.Edge_rel.Child_step "site";
         Sedna_baselines.Edge_rel.Child_step "regions";
         Sedna_baselines.Edge_rel.Child_step "namerica";
         Sedna_baselines.Edge_rel.Child_step "item" ]);
      ("//bidder", {|count(doc("a")//bidder)|},
       [ Sedna_baselines.Edge_rel.Desc_step "bidder" ]);
      ("/site//item//listitem", {|count(doc("a")/site//item//listitem)|},
       [ Sedna_baselines.Edge_rel.Child_step "site";
         Sedna_baselines.Edge_rel.Desc_step "item";
         Sedna_baselines.Edge_rel.Desc_step "listitem" ]);
    ]
  in
  pf "  %-28s %11s %11s %11s %11s\n" "path" "sedna ms" "join ms" "sedna I/O" "join I/O";
  List.iter
    (fun (name, q, steps) ->
      let sedna_n = exec s q in
      let rel_n = List.length (Sedna_baselines.Edge_rel.eval_path rel steps) in
      if int_of_string sedna_n <> rel_n then
        pf "  WARNING: %s disagrees (%s vs %d)\n" name sedna_n rel_n;
      let t_sedna = time_median (fun () -> exec s q) in
      let t_rel =
        time_median (fun () -> Sedna_baselines.Edge_rel.eval_path rel steps)
      in
      (* page I/O comparison: cold buffer reads vs pages of touched rows *)
      let sedna_io, _ = cold_reads db (fun () -> exec s q) in
      Sedna_baselines.Edge_rel.reset_touches rel;
      ignore (Sedna_baselines.Edge_rel.eval_path rel steps);
      let rel_io = Sedna_baselines.Edge_rel.touches rel in
      pf "  %-28s %11s %11s %11d %11d\n" name
        (Printf.sprintf "%.2f" (ms t_sedna))
        (Printf.sprintf "%.2f" (ms t_rel))
        sedna_io rel_io)
    cases;
  pf "\n  (the in-memory join baseline has no buffer manager or tuple\n";
  pf "   materialization costs, so wall times flatter it; the page-I/O\n";
  pf "   columns show the paper's asymmetry directly)\n";
  Sedna_core.Database.close db

(* ------------------------------------------------------------------ *)
(* E4 — Figure 3 / §4.1: constant-field updates                        *)
(* ------------------------------------------------------------------ *)

let e4 () =
  header "E4  Figure 3 / §4.1 — updates touch O(1) fields per node"
    "relocating a node updates a constant number of fields thanks to \
     the indirect parent pointer; a direct-parent design would touch \
     one field per child";
  row4 "fan-out" "moved" "fields/move" "direct-parent would";
  List.iter
    (fun fanout ->
      let db = fresh_db () in
      let name = "w" in
      (* two existing child kinds fill the root's child slots, so the
         third (below) forces the widening relocation *)
      ignore
        (load_events db name
           (Sedna_workloads.Generators.wide ~kinds:2 ~children:fanout ()));
      Sedna_core.Database.with_txn db (fun txn st ->
          Sedna_core.Database.lock_exn db txn ~doc:name
            ~mode:Sedna_core.Lock_mgr.Exclusive;
          let doc = Sedna_core.Catalog.get_document st.Sedna_core.Store.cat name in
          let dd = Sedna_core.Indirection.get st.Sedna_core.Store.bm
              doc.Sedna_core.Catalog.doc_indir in
          let root = List.hd (Sedna_core.Node.children st dd) in
          Sedna_util.Counters.reset Sedna_util.Counters.fields_updated;
          Sedna_util.Counters.reset Sedna_util.Counters.node_moved;
          (* force the root (fan-out = [fanout]) to relocate by giving
             it a child of a brand-new schema kind *)
          ignore
            (Sedna_core.Update_ops.insert_child st
               ~parent_handle:(Sedna_core.Node.handle st root) ~left:None
               ~right:None ~kind:Sedna_core.Catalog.Element
               ~name:(Some (Sedna_util.Xname.make "brandnew"))
               ~value:None);
          let moved = Sedna_util.Counters.get Sedna_util.Counters.node_moved in
          let fields = Sedna_util.Counters.get Sedna_util.Counters.fields_updated in
          row4
            (string_of_int fanout)
            (string_of_int moved)
            (if moved = 0 then "-"
             else Printf.sprintf "%.1f" (float_of_int fields /. float_of_int moved))
            (Printf.sprintf "~%d" (fanout + 3)));
      Sedna_core.Database.close db)
    [ 10; 100; 1000; 5000 ];
  pf "\n  (fields/move stays constant; a direct parent pointer would force\n";
  pf "   one write per child of the moved node — the last column)\n"

(* block split cost ablation: same story, measured through real splits *)
let e4b () =
  header "E4b §4.1 — block split cost vs children of the moved nodes"
    "splitting a block of parents with many children never touches the \
     children (their parent pointer is the indirection cell)";
  row3 "children per moved node" "fields/move" "";
  List.iter
    (fun kids ->
      let db = fresh_db () in
      let xml =
        let b = Buffer.create 4096 in
        Buffer.add_string b "<root>";
        for _ = 0 to 80 do
          Buffer.add_string b "<p>";
          for _ = 1 to kids do
            Buffer.add_string b "<c/>"
          done;
          Buffer.add_string b "</p>"
        done;
        Buffer.add_string b "</root>";
        Buffer.contents b
      in
      Sedna_core.Database.with_txn db (fun txn st ->
          Sedna_core.Database.lock_exn db txn ~doc:"d"
            ~mode:Sedna_core.Lock_mgr.Exclusive;
          ignore (Sedna_core.Loader.load_string st ~doc_name:"d" xml);
          let doc = Sedna_core.Catalog.get_document st.Sedna_core.Store.cat "d" in
          let dd = Sedna_core.Indirection.get st.Sedna_core.Store.bm
              doc.Sedna_core.Catalog.doc_indir in
          let root = List.hd (Sedna_core.Node.children st dd) in
          let ps = Sedna_core.Node.children st root in
          let p1 = List.nth ps 10 and p2 = List.nth ps 11 in
          let h1 = Sedna_core.Node.handle st p1
          and h2 = Sedna_core.Node.handle st p2 in
          Sedna_util.Counters.reset Sedna_util.Counters.fields_updated;
          Sedna_util.Counters.reset Sedna_util.Counters.node_moved;
          (* middle insertions of <p> force the p-block to split *)
          let left = ref h1 in
          for _ = 1 to 60 do
            left :=
              Sedna_core.Update_ops.insert_child st
                ~parent_handle:(Sedna_core.Node.handle st root)
                ~left:(Some !left) ~right:(Some h2)
                ~kind:Sedna_core.Catalog.Element
                ~name:(Some (Sedna_util.Xname.make "p"))
                ~value:None
          done;
          let moved = Sedna_util.Counters.get Sedna_util.Counters.node_moved in
          let fields = Sedna_util.Counters.get Sedna_util.Counters.fields_updated in
          row3
            (string_of_int kids)
            (if moved = 0 then "(no split)"
             else Printf.sprintf "%.1f" (float_of_int fields /. float_of_int moved))
            "");
      Sedna_core.Database.close db)
    [ 0; 5; 50 ]

(* ------------------------------------------------------------------ *)
(* E5 — §4.1.1: numbering without relabeling                           *)
(* ------------------------------------------------------------------ *)

let e5 () =
  header "E5  §4.1.1 — insertions never relabel"
    "Sedna's string labels always have room between two labels; \
     integer (order,size) schemes must periodically relabel";
  row4 "middle inserts" "sedna relabels" "xiss relabels" "xiss nodes touched";
  List.iter
    (fun n ->
      (* Sedna scheme *)
      let a = Sedna_nid.Nid.ordinal_child ~parent:Sedna_nid.Nid.root 0 in
      let b = Sedna_nid.Nid.ordinal_child ~parent:Sedna_nid.Nid.root 1 in
      let lo = ref a and hi = ref b in
      let max_len = ref 0 in
      for i = 0 to n - 1 do
        let m =
          Sedna_nid.Nid.child_between ~parent:Sedna_nid.Nid.root ~left:(Some !lo)
            ~right:(Some !hi)
        in
        max_len := max !max_len (String.length (Sedna_nid.Nid.to_raw m));
        if i mod 2 = 0 then lo := m else hi := m
      done;
      (* XISS-style scheme *)
      let x = Sedna_baselines.Xiss.create () in
      Sedna_baselines.Xiss.append x;
      Sedna_baselines.Xiss.append x;
      for _ = 1 to n do
        Sedna_baselines.Xiss.insert_between x 0
      done;
      row4 (string_of_int n) "0"
        (string_of_int (Sedna_baselines.Xiss.relabels x))
        (string_of_int (Sedna_baselines.Xiss.relabeled_nodes x));
      pf "      (max sedna label length at n=%d: %d bytes)\n" n !max_len)
    [ 1_000; 5_000; 20_000 ]

(* ------------------------------------------------------------------ *)
(* E6 — §4.1.1: label operations are cheap comparisons                 *)
(* ------------------------------------------------------------------ *)

let bechamel_table (tests : Bechamel.Test.t list) =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> row3 name (Printf.sprintf "%.1f ns/op" est) ""
          | _ -> row3 name "n/a" "")
        analyzed)
    tests

let e6 () =
  header "E6  §4.1.1 — numbering-scheme operations"
    "ancestor tests and document-order comparisons are plain string \
     comparisons on labels";
  (* build a mixed label population *)
  let labels = Array.make 1024 Sedna_nid.Nid.root in
  let k = ref 0 in
  let rec build parent depth =
    if !k < 1024 then begin
      let l = Sedna_nid.Nid.ordinal_child ~parent (!k mod 50) in
      labels.(!k) <- l;
      incr k;
      if depth < 6 then build l (depth + 1);
      if !k < 1024 then build parent depth
    end
  in
  build Sedna_nid.Nid.root 0;
  let i = ref 0 in
  let pick () =
    i := (!i + 17) land 1023;
    labels.(!i)
  in
  let t1 =
    Bechamel.Test.make ~name:"nid compare (doc order)"
      (Bechamel.Staged.stage (fun () ->
           ignore (Sedna_nid.Nid.compare (pick ()) (pick ()))))
  in
  let t2 =
    Bechamel.Test.make ~name:"nid ancestor test"
      (Bechamel.Staged.stage (fun () ->
           ignore (Sedna_nid.Nid.is_ancestor ~ancestor:(pick ()) (pick ()))))
  in
  let t3 =
    Bechamel.Test.make ~name:"nid allocate between"
      (Bechamel.Staged.stage (fun () ->
           ignore
             (Sedna_nid.Nid.child_between ~parent:Sedna_nid.Nid.root ~left:None
                ~right:None)))
  in
  bechamel_table [ t1; t2; t3 ]

(* inline vs overflow labels: the fixed-size descriptor keeps labels up
   to 15 bytes inline; deeper nodes pay a text-store hop per label read *)
let e6b () =
  header "E6b §4.1 — label storage: inline vs overflow"
    "short labels live inside the fixed-size descriptor; long labels
     cost one extra dereference into the text store";
  row3 "document depth" "ancestor-axis walk" "label bytes at leaf";
  List.iter
    (fun depth ->
      let db = fresh_db () in
      ignore (load_events db "deep" (Sedna_workloads.Generators.deep ~depth ()));
      let st = Sedna_core.Database.store db in
      let doc = Sedna_core.Catalog.get_document (Sedna_core.Database.catalog db) "deep" in
      let dd = Sedna_core.Indirection.get st.Sedna_core.Store.bm
          doc.Sedna_core.Catalog.doc_indir in
      let leaf =
        List.of_seq
          (Sedna_core.Traverse.descendants_schema st
             ~test:(Sedna_core.Traverse.element_test
                      (Some (Sedna_util.Xname.make "leaf")))
             dd)
        |> List.hd
      in
      let lbl_len =
        String.length (Sedna_nid.Nid.to_raw (Sedna_core.Node.label st leaf))
      in
      let walk () =
        Seq.length (Sedna_core.Traverse.ancestors st leaf)
      in
      let t = time_median walk in
      row3 (string_of_int depth)
        (Printf.sprintf "%.3f ms" (ms t))
        (Printf.sprintf "%d%s" lbl_len (if lbl_len > 15 then " (overflow)" else " (inline)"));
      Sedna_core.Database.close db)
    [ 4; 12; 60; 200 ]

(* ------------------------------------------------------------------ *)
(* E7 — Figure 4 / §4.2: dereferencing without swizzling               *)
(* ------------------------------------------------------------------ *)

let e7 () =
  header "E7  Figure 4 / §4.2 — pointer dereferencing"
    "equality-based layer mapping dereferences like an ordinary \
     pointer; swizzling tables pay a hash lookup per dereference";
  (* an isolated dereference kernel: a shuffled chain of 8-byte cells
     spread over pages in the SAS; each hop is one database-pointer
     dereference + one 8-byte read *)
  let n_pages = 900 in
  let cells_per_page = 16 in
  let db = fresh_db ~buffer_frames:2048 () in
  let bm = Sedna_core.Database.buffer db in
  let pages = Array.init n_pages (fun _ -> Sedna_core.Buffer_mgr.allocate_page bm) in
  let n_cells = n_pages * cells_per_page in
  let cell i =
    Sedna_core.Xptr.add pages.(i / cells_per_page) (64 + (8 * (i mod cells_per_page)))
  in
  let rng = Random.State.make [| 7 |] in
  let order = Array.init n_cells Fun.id in
  for i = n_cells - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  done;
  for k = 0 to n_cells - 1 do
    Sedna_core.Buffer_mgr.write_xptr bm (cell order.(k))
      (cell order.((k + 1) mod n_cells))
  done;
  let hops = 200_000 in
  let chase () =
    let p = ref (cell order.(0)) in
    for _ = 1 to hops do
      p := Sedna_core.Buffer_mgr.read_xptr bm !p
    done;
    !p
  in
  ignore (chase ());
  Sedna_core.Buffer_mgr.set_use_vas bm true;
  let t_vas = time_median chase in
  let fast, _ = counter_during Sedna_util.Counters.vas_fast_hit chase in
  Sedna_core.Buffer_mgr.set_use_vas bm false;
  let t_hash = time_median chase in
  Sedna_core.Buffer_mgr.set_use_vas bm true;
  (* a swizzling-table baseline chasing the same number of hops *)
  let sw, start = Sedna_baselines.Swizzle.build n_cells in
  let t_sw = time_median (fun () -> Sedna_baselines.Swizzle.chase sw start hops) in
  row3 (Printf.sprintf "dereference kernel (%d hops)" hops) "time" "ns/hop";
  let ns_per t = t *. 1e9 /. float_of_int hops in
  record "e7.vas_ns_per_hop" (Sedna_util.Metrics.Float (ns_per t_vas));
  record "e7.hash_ns_per_hop" (Sedna_util.Metrics.Float (ns_per t_hash));
  record "e7.swizzle_ns_per_hop" (Sedna_util.Metrics.Float (ns_per t_sw));
  let per t = Printf.sprintf "%.1f ns" (ns_per t) in
  row3 "  VAS equality mapping (sedna)" (Printf.sprintf "%.2f ms" (ms t_vas)) (per t_vas);
  row3 "  per-deref translation (hash)" (Printf.sprintf "%.2f ms" (ms t_hash)) (per t_hash);
  row3 "  bare table chase (floor)" (Printf.sprintf "%.2f ms" (ms t_sw)) (per t_sw);
  pf "  (VAS fast hits during one chase: %d of %d; rows 1-2 run the same\n" fast hops;
  pf "   engine code path, row 3 is an idealized lower bound without the\n";
  pf "   page-accessor plumbing)\n";
  Sedna_core.Database.close db

let e7b () =
  header "E7b §4.2 — buffer pool sweep (faults are the other cost)"
    "when data exceeds the pool, faults dominate; the mapping check \
     stays cheap either way";
  row3 "pool frames" "scan time" "cold disk reads";
  List.iter
    (fun frames ->
      let db = fresh_db ~buffer_frames:frames () in
      ignore
        (load_events db "lib" (Sedna_workloads.Generators.library ~books:4000 ()));
      let s = session db in
      let reads, _ = cold_reads db (fun () -> exec s {|count(doc("lib")//author)|}) in
      let t = time_median ~runs:3 (fun () -> exec s {|count(doc("lib")//author)|}) in
      row3 (string_of_int frames)
        (Printf.sprintf "%.2f ms" (ms t))
        (string_of_int reads);
      Sedna_core.Database.close db)
    [ 16; 64; 256; 2048 ]

(* ------------------------------------------------------------------ *)
(* E8..E11 — §5: rewriter optimizations                                *)
(* ------------------------------------------------------------------ *)

let rewrite_pair title claim q ~on ~off =
  header title claim;
  let db = fresh_db () in
  ignore
    (load_events db "a"
       (Sedna_workloads.Generators.auction ~items:500 ~people:400 ~auctions:400 ()));
  let s_on = session ~opts:on db in
  let s_off = session ~opts:off db in
  let r_on = exec s_on q and r_off = exec s_off q in
  if r_on <> r_off then pf "  WARNING: results differ!\n";
  let t_on = time_median (fun () -> exec s_on q) in
  let t_off = time_median (fun () -> exec s_off q) in
  row3 "rule enabled" (Printf.sprintf "%.2f ms" (ms t_on)) "";
  row3 "rule disabled" (Printf.sprintf "%.2f ms" (ms t_off)) "";
  pf "  result: %s%s\n"
    (String.sub r_on 0 (min 40 (String.length r_on)))
    (if String.length r_on > 40 then "..." else "");
  Sedna_core.Database.close db

let e8 () =
  let on = Sedna_xquery.Rewriter.default_options in
  let off = { on with Sedna_xquery.Rewriter.remove_ddo = false } in
  rewrite_pair "E8  §5.1.1 — removing unnecessary DDO operations"
    "redundant distinct-document-order operations break pipelining and \
     cost a sort per query"
    {|count(doc("a")/site/open_auctions/open_auction/bidder/increase)|}
    ~on ~off

let e9 () =
  let on = Sedna_xquery.Rewriter.default_options in
  let off =
    { on with Sedna_xquery.Rewriter.combine_descendant = false;
              Sedna_xquery.Rewriter.extract_structural = false }
  in
  rewrite_pair "E9  §5.1.2 — combining the abbreviated '//' step"
    "//x as descendant-or-self::node()/child::x visits every node; \
     /descendant::x uses the schema"
    {|count(doc("a")//increase)|} ~on ~off

let e10 () =
  let on = Sedna_xquery.Rewriter.default_options in
  let off = { on with Sedna_xquery.Rewriter.extract_structural = false } in
  rewrite_pair "E10 §5.1.4 — structural paths on the descriptive schema"
    "a path of descending name steps resolves against the in-memory \
     schema; only matching blocks are scanned"
    {|count(doc("a")/site/open_auctions/open_auction/bidder/increase)|}
    ~on ~off

let e11 () =
  header "E11 §5.2.1 — element constructor optimizations"
    "virtual constructors avoid deep copies when the result is only \
     serialized";
  let db = fresh_db () in
  ignore
    (load_events db "a"
       (Sedna_workloads.Generators.auction ~items:300 ~people:200 ~auctions:200 ()));
  let q = {|<report>{doc("a")/site/regions/namerica/item}</report>|} in
  let on = session db in
  let off =
    session
      ~opts:{ Sedna_xquery.Rewriter.default_options with
              Sedna_xquery.Rewriter.virtual_constructors = false }
      db
  in
  let copies_on, _ = counter_during Sedna_util.Counters.deep_copies (fun () -> exec on q) in
  let copies_off, _ = counter_during Sedna_util.Counters.deep_copies (fun () -> exec off q) in
  let t_on = time_median (fun () -> exec on q) in
  let t_off = time_median (fun () -> exec off q) in
  row4 "" "time" "deep copies" "";
  row4 "virtual constructors" (Printf.sprintf "%.2f ms" (ms t_on))
    (string_of_int copies_on) "";
  row4 "always deep-copy" (Printf.sprintf "%.2f ms" (ms t_off))
    (string_of_int copies_off) "";
  Sedna_core.Database.close db

(* ------------------------------------------------------------------ *)
(* E12 — §6: transactions                                              *)
(* ------------------------------------------------------------------ *)

let e12 () =
  header "E12 §6 — snapshots, versions, recovery"
    "read-only transactions read a snapshot without blocking behind \
     the updater; recovery replays committed work";
  let db = fresh_db () in
  ignore (load_events db "b" (Sedna_workloads.Generators.library ~books:400 ()));
  (* updater holds the X lock and has uncommitted changes *)
  let writer = Sedna_db.Session.connect db in
  Sedna_db.Session.begin_txn writer;
  ignore
    (Sedna_db.Session.execute writer
       {|UPDATE insert <pending/> into doc("b")/library|});
  (* a read-only transaction proceeds against its snapshot *)
  let reader = Sedna_core.Database.begin_txn ~read_only:true db in
  let read_query () =
    Sedna_core.Database.run db reader (fun () ->
        let st = Sedna_core.Database.txn_store db reader in
        let doc = Sedna_core.Catalog.get_document st.Sedna_core.Store.cat "b" in
        let dd = Sedna_core.Indirection.get st.Sedna_core.Store.bm
            doc.Sedna_core.Catalog.doc_indir in
        let n = ref 0 in
        Seq.iter (fun _ -> incr n)
          (Sedna_core.Traverse.descendants_walk st dd);
        !n)
  in
  let t_reader = time_median read_query in
  row3 "snapshot read under writer lock"
    (Printf.sprintf "%.2f ms" (ms t_reader))
    "(no blocking, paper §6.3)";
  row3 "  saved page versions"
    (string_of_int (Sedna_core.Versions.version_count (Sedna_core.Database.versions db)))
    "";
  Sedna_core.Database.commit db reader;
  Sedna_db.Session.commit writer;
  (* recovery time as a function of committed work since checkpoint *)
  pf "\n";
  row3 "updates since checkpoint" "recovery time" "wal size";
  List.iter
    (fun updates ->
      let dir =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "sedna-rec-%d-%d" (Unix.getpid ()) updates)
      in
      if Sys.file_exists dir then
        ignore (Sys.command ("rm -rf " ^ Filename.quote dir));
      let db2 = Sedna_core.Database.create dir in
      ignore (load_events db2 "b" (Sedna_workloads.Generators.library ~books:50 ()));
      Sedna_core.Database.checkpoint db2;
      let s2 = session db2 in
      for i = 1 to updates do
        ignore
          (exec s2
             (Printf.sprintf
                {|UPDATE insert <entry n="%d"/> into doc("b")/library|} i))
      done;
      let wal_size = (Unix.stat (Filename.concat dir "wal.sdb")).Unix.st_size in
      Sedna_core.Database.crash db2;
      let t, db3 = time_once (fun () -> Sedna_core.Database.open_existing dir) in
      let n = exec (session db3) {|count(doc("b")/library/entry)|} in
      if int_of_string n <> updates then pf "  WARNING: recovery lost entries\n";
      row3 (string_of_int updates)
        (Printf.sprintf "%.2f ms" (ms t))
        (Printf.sprintf "%d KiB" (wal_size / 1024));
      Sedna_core.Database.close db3)
    [ 10; 100; 400 ];
  Sedna_core.Database.close db

(* ------------------------------------------------------------------ *)
(* E13 — §5.1/§4.3: automatic index selection + compiled-plan cache    *)
(* ------------------------------------------------------------------ *)

let e13 () =
  header "E13 §5.1/§4.3 — automatic index selection + plan cache"
    "a selective value predicate over an indexed path becomes a B-tree \
     probe (rewriter rule 7) instead of a block scan; repeated \
     statements skip parse/analysis/rewrite via the session plan cache";
  let db = fresh_db ~buffer_frames:256 () in
  let books = if quick () then 1200 else 5000 in
  let _, n = load_events db "lib" (Sedna_workloads.Generators.library ~books ()) in
  pf "  document: %d nodes\n" n;
  ignore
    (exec (session db)
       {|CREATE INDEX "price" ON doc("lib")/library/book BY price AS xs:integer|});
  let s_idx = session db in
  let s_seq =
    session
      ~opts:{ Sedna_xquery.Rewriter.default_options with
              Sedna_xquery.Rewriter.use_indexes = false }
      db
  in
  (* page touches = buffer pins, hit or fault *)
  let touches f =
    let d, r = deltas_during f in
    let get k = Option.value (List.assoc_opt k d) ~default:0 in
    (get Sedna_util.Counters.buffer_hit + get Sedna_util.Counters.buffer_fault, r)
  in
  pf "\n";
  pf "  %-30s %10s %10s %8s %9s %9s\n" "query" "probe ms" "scan ms" "speedup"
    "probe pg" "scan pg";
  List.iter
    (fun (name, q) ->
      let r_idx = exec s_idx q and r_seq = exec s_seq q in
      if r_idx <> r_seq then pf "  WARNING: %s disagrees (%s vs %s)\n" name r_idx r_seq;
      let probes, _ =
        counter_during Sedna_util.Counters.index_probe (fun () -> exec s_idx q)
      in
      if probes = 0 then pf "  WARNING: %s did not use the index\n" name;
      let t_idx = time_median (fun () -> exec s_idx q) in
      let t_seq = time_median (fun () -> exec s_seq q) in
      let pg_idx, _ = touches (fun () -> exec s_idx q) in
      let pg_seq, _ = touches (fun () -> exec s_seq q) in
      record_ms (Printf.sprintf "e13.%s.probe_ms" name) t_idx;
      record_ms (Printf.sprintf "e13.%s.scan_ms" name) t_seq;
      record_int (Printf.sprintf "e13.%s.probe_pages" name) pg_idx;
      record_int (Printf.sprintf "e13.%s.scan_pages" name) pg_seq;
      pf "  %-30s %10s %10s %8s %9d %9d\n" name
        (Printf.sprintf "%.3f" (ms t_idx))
        (Printf.sprintf "%.3f" (ms t_seq))
        (Printf.sprintf "%.1fx" (t_seq /. t_idx))
        pg_idx pg_seq)
    [
      ("point [price = 42]", {|count(doc("lib")/library/book[price = 42])|});
      ("range [price >= 95]", {|count(doc("lib")/library/book[price >= 95])|});
      ("descendant //book[price=42]", {|count(doc("lib")//book[price = 42])|});
      ("probe + suffix steps", {|count(doc("lib")/library/book[price = 42]/title)|});
    ];
  (* plan cache: cold compile (parse + analysis + rewrite) vs cached.
     Two statements: the probe query above (execution-bound, shows the
     hit counter) and a wide union over a tiny document whose cost is
     almost all compilation. *)
  ignore (load_events db "t" (Sedna_workloads.Generators.library ~books:2 ()));
  let wide_union =
    "count(("
    ^ String.concat ", "
        (List.init
           (if quick () then 12 else 40)
           (fun i -> Printf.sprintf {|doc("t")//name%d[v = %d]|} i i))
    ^ "))"
  in
  let s = session db in
  pf "\n";
  List.iter
    (fun (name, q) ->
      let t_cold =
        time_median (fun () ->
            Sedna_db.Session.clear_plan_cache s;
            exec s q)
      in
      let t_warm = time_median (fun () -> exec s q) in
      record_ms (Printf.sprintf "e13.%s.cold_ms" name) t_cold;
      record_ms (Printf.sprintf "e13.%s.cached_ms" name) t_warm;
      row3 name
        (Printf.sprintf "cold %.3f ms" (ms t_cold))
        (Printf.sprintf "cached %.3f ms (%.1fx)" (ms t_warm) (t_cold /. t_warm)))
    [
      ("probe query (execution-bound)",
       {|count(doc("lib")/library/book[price = 42])|});
      ("wide union (compile-bound)", wide_union);
    ];
  let hits, misses = Sedna_db.Session.plan_cache_stats s in
  record_int "e13.plan_cache.hits" hits;
  record_int "e13.plan_cache.misses" misses;
  row3 "plan cache" (Printf.sprintf "%d hits" hits)
    (Printf.sprintf "%d misses" misses);
  pf "\n  (ablation: use_indexes = false restores the sequential plans in\n";
  pf "   the 'scan' columns; DDL bumps the catalog epoch and invalidates\n";
  pf "   cached plans — see test/test_plan_cache.ml)\n";
  Sedna_core.Database.close db

(* ------------------------------------------------------------------ *)
(* E14 — §3/§6.3: concurrent multi-session server                      *)
(* ------------------------------------------------------------------ *)

(* N concurrent clients over real TCP connections against the serving
   layer: a mixed read/update workload (throughput and latency
   percentiles), the §6.3 demonstration that a snapshot reader
   completes while a writer transaction is uncommitted, admission
   control under a session limit, and a graceful shutdown whose store
   reopens clean. *)
let e14 () =
  header "E14 §3/§6.3 — concurrent multi-session server"
    "snapshot readers complete while a writer transaction is \
     uncommitted on another connection; admission control sheds load \
     with SE-OVERLOADED; a drained shutdown leaves a recoverable store";
  let module G = Sedna_db.Governor in
  let module Server = Sedna_server.Server in
  let module Client = Sedna_server.Server_client in
  let exec_remote c q = Client.execute_string c q in
  let clients = if quick () then 4 else 8 in
  let per_client = if quick () then 25 else 100 in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sedna-bench-srv-%d-%f" (Unix.getpid ())
         (Unix.gettimeofday ()))
  in
  if Sys.file_exists dir then ignore (Sys.command ("rm -rf " ^ Filename.quote dir));
  let g = G.create () in
  ignore (G.create_database g ~name:"main" ~dir);
  let srv =
    Server.start
      ~config:{ Server.default_config with pool_size = clients + 4 }
      g
  in
  let port = Server.port srv in
  let new_client () =
    let c = Client.connect ~port () in
    ignore (Client.open_db c "main");
    c
  in
  let seed = new_client () in
  ignore (Client.execute seed {|CREATE DOCUMENT "d"|});
  ignore
    (Client.execute seed
       ("UPDATE insert <r>"
        ^ String.concat ""
            (List.init 200 (fun i -> Printf.sprintf "<item v=\"%d\"/>" i))
        ^ {|</r> into doc("d")|}));
  Client.close seed;
  pf "  %d clients x %d requests each, port %d\n" clients per_client port;

  (* ---- §6.3: snapshot reader vs uncommitted writer ---------------- *)
  let writer = new_client () in
  let reader = new_client () in
  ignore (Client.execute writer "BEGIN");
  ignore (Client.execute writer {|UPDATE insert <item v="-1"/> into doc("d")/r|});
  (* the writer now holds the document X lock, uncommitted; the
     snapshot reader must complete anyway, on the pre-writer state *)
  let t_read, seen =
    time_once (fun () -> exec_remote reader {|count(doc("d")/r/item)|})
  in
  ignore (Client.execute writer "COMMIT");
  let after = exec_remote reader {|count(doc("d")/r/item)|} in
  Client.close writer;
  Client.close reader;
  record_ms "e14.snapshot_reader_ms" t_read;
  row3 "reader under uncommitted writer"
    (Printf.sprintf "%.2f ms" (ms t_read))
    (Printf.sprintf "saw %s, %s after commit" seen after);
  if seen <> "200" || after <> "201" then begin
    pf "  E14 FAILED: snapshot reader saw %s (want 200), %s after commit (want 201)\n"
      seen after;
    exit 1
  end;

  (* ---- mixed workload: 1 writer, N-1 readers ----------------------- *)
  let read_h = Sedna_util.Metrics.histogram "e14.read.latency" in
  let write_h = Sedna_util.Metrics.histogram "e14.write.latency" in
  let read_qs =
    [|
      {|count(doc("d")/r/item)|};
      {|count(doc("d")/r/item[@v >= 100])|};
      {|string(doc("d")/r/item[1]/@v)|};
    |]
  in
  let failures = ref 0 in
  let fail_mu = Mutex.create () in
  let body i () =
    try
      let c = new_client () in
      for j = 1 to per_client do
        if i = 0 then begin
          let t, _ =
            time_once (fun () ->
                Client.execute c
                  (Printf.sprintf
                     {|UPDATE insert <w c="%d"/> into doc("d")/r|} j))
          in
          Sedna_util.Metrics.observe write_h t
        end
        else begin
          let t, _ =
            time_once (fun () ->
                Client.execute c read_qs.(j mod Array.length read_qs))
          in
          Sedna_util.Metrics.observe read_h t
        end
      done;
      Client.close c
    with e ->
      Mutex.lock fail_mu;
      incr failures;
      Mutex.unlock fail_mu;
      pf "  client %d failed: %s\n" i (Printexc.to_string e)
  in
  let t_wall, () =
    time_once (fun () ->
        let ts = List.init clients (fun i -> Thread.create (body i) ()) in
        List.iter Thread.join ts)
  in
  let total = clients * per_client in
  let rps = float_of_int total /. t_wall in
  let p h q = Sedna_util.Metrics.percentile h q in
  record_int "e14.clients" clients;
  record_int "e14.requests" total;
  record_int "e14.client_failures" !failures;
  record "e14.throughput_rps" (Sedna_util.Metrics.Float rps);
  record_ms "e14.read_p50_ms" (p read_h 0.5);
  record_ms "e14.read_p95_ms" (p read_h 0.95);
  record_ms "e14.write_p50_ms" (p write_h 0.5);
  record_ms "e14.write_p95_ms" (p write_h 0.95);
  row3 "mixed workload"
    (Printf.sprintf "%d reqs in %.2f s" total t_wall)
    (Printf.sprintf "%.0f req/s" rps);
  row3 "read latency"
    (Printf.sprintf "p50 %.2f ms" (ms (p read_h 0.5)))
    (Printf.sprintf "p95 %.2f ms" (ms (p read_h 0.95)));
  row3 "write latency"
    (Printf.sprintf "p50 %.2f ms" (ms (p write_h 0.5)))
    (Printf.sprintf "p95 %.2f ms" (ms (p write_h 0.95)));
  if !failures > 0 then begin
    pf "  E14 FAILED: %d clients errored\n" !failures;
    exit 1
  end;

  (* ---- admission control ------------------------------------------- *)
  G.set_limits g { G.max_sessions = 2; query_timeout_s = 0. };
  let c1 = new_client () and c2 = new_client () in
  let refused =
    let c3 = Client.connect ~port () in
    match Client.open_db c3 "main" with
    | exception Client.Remote_error ("SE-OVERLOADED", _) ->
      Client.close c3;
      true
    | _ ->
      Client.close c3;
      false
  in
  Client.close c1;
  Client.close c2;
  record_int "e14.overload_refused" (if refused then 1 else 0);
  row3 "admission control" "max_sessions = 2"
    (if refused then "3rd open refused (SE-OVERLOADED)" else "NOT refused");

  (* ---- graceful shutdown + reopen ----------------------------------- *)
  let t_stop, () = time_once (fun () -> Server.stop srv) in
  let db = Sedna_core.Database.open_existing dir in
  let problems = Sedna_core.Integrity.check_all (Sedna_core.Database.store db) in
  let committed =
    let s = Sedna_db.Session.connect db in
    Sedna_db.Session.execute_string s {|count(doc("d")/r/w)|}
  in
  Sedna_core.Database.close db;
  record_ms "e14.shutdown_ms" t_stop;
  record_int "e14.integrity_errors" (List.length problems);
  row3 "graceful shutdown"
    (Printf.sprintf "%.2f ms" (ms t_stop))
    (Printf.sprintf "reopen: %s, %s writes durable"
       (if problems = [] then "integrity OK" else "INTEGRITY ERRORS")
       committed);
  if problems <> [] || committed <> string_of_int per_client then begin
    pf "  E14 FAILED: integrity %d errors, %s/%d writes after reopen\n"
      (List.length problems) committed per_client;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* E15 — replication: WAL-shipping hot standby + client failover       *)
(* ------------------------------------------------------------------ *)

(* The E14 mixed workload with a hot standby attached: measures
   replication lag while the workload runs, then kills the primary
   (hard, no shutdown), verifies the in-flight writer sees SE-FAILOVER
   while a reader fails over transparently, promotes the standby over
   the wire (PROMOTE), re-runs the clients against it, and checks that
   no acknowledged commit was lost and both stores pass integrity. *)
let e15 () =
  header "E15 replication — WAL-shipping hot standby, kill + promote"
    "bounded replication lag under the E14 mixed workload; after a hard \
     primary kill the standby promotes and holds every acked commit; \
     in-flight writers get SE-FAILOVER, readers fail over transparently";
  let module G = Sedna_db.Governor in
  let module Server = Sedna_server.Server in
  let module Client = Sedna_server.Server_client in
  let module Sender = Sedna_replication.Repl_sender in
  let module Recv = Sedna_replication.Repl_receiver in
  let clients = if quick () then 4 else 8 in
  let per_client = if quick () then 25 else 100 in
  let base =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sedna-bench-repl-%d-%f" (Unix.getpid ())
         (Unix.gettimeofday ()))
  in
  if Sys.file_exists base then ignore (Sys.command ("rm -rf " ^ Filename.quote base));
  Unix.mkdir base 0o755;
  let gov_p = G.create () and gov_s = G.create () in
  let db =
    G.create_database gov_p ~name:"main" ~dir:(Filename.concat base "primary")
  in
  let srv_p =
    Server.start ~config:{ Server.default_config with pool_size = clients + 4 }
      gov_p
  in
  let sender = Sender.start ~gov:gov_p db in
  let recv =
    Recv.start ~gov:gov_s ~name:"main" ~dir:(Filename.concat base "standby")
      ~host:"127.0.0.1" ~port:(Sender.port sender) ()
  in
  let srv_s =
    Server.start ~config:{ Server.default_config with pool_size = clients + 4 }
      ~on_promote:(fun () -> Recv.promote recv)
      gov_s
  in
  let pport = Server.port srv_p and sport = Server.port srv_s in
  let endpoints = [ ("127.0.0.1", pport); ("127.0.0.1", sport) ] in
  let new_client () =
    let c = Client.connect ~host:"127.0.0.1" ~endpoints ~retries:3 ~port:pport () in
    ignore (Client.open_db c "main");
    c
  in
  let seed = new_client () in
  ignore (Client.execute seed {|CREATE DOCUMENT "d"|});
  ignore
    (Client.execute seed
       ("UPDATE insert <r>"
        ^ String.concat ""
            (List.init 200 (fun i -> Printf.sprintf "<item v=\"%d\"/>" i))
        ^ {|</r> into doc("d")|}));
  Client.close seed;
  let wal_tip () = (Sedna_core.Wal.epoch (Sedna_core.Database.wal db),
                    Sedna_core.Wal.size (Sedna_core.Database.wal db)) in
  let epoch0, pos0 = wal_tip () in
  if not (Recv.wait_caught_up ~timeout_s:30. recv ~epoch:epoch0 ~pos:pos0) then begin
    pf "  E15 FAILED: standby never finished the initial seed\n";
    exit 1
  end;
  pf "  primary :%d, standby :%d, %d clients x %d requests\n" pport sport
    clients per_client;

  (* ---- mixed workload with the standby attached; sample lag -------- *)
  (* byte-scale buckets: the default histogram bounds are latency
     seconds and every lag sample would land in the overflow bucket *)
  let lag_buckets =
    Array.init 24 (fun i -> float_of_int (16 lsl i)) in
  let lag_h =
    Sedna_util.Metrics.histogram ~buckets:lag_buckets "e15.lag.bytes" in
  let sampling = ref true in
  let sampler =
    Thread.create
      (fun () ->
        while !sampling do
          Sedna_util.Metrics.observe lag_h
            (float_of_int (Sedna_util.Counters.get Sedna_util.Counters.repl_lag_bytes));
          Unix.sleepf 0.002
        done)
      ()
  in
  let acked = ref [] in
  let ack_mu = Mutex.create () in
  let failures = ref 0 in
  let token i j = Printf.sprintf "|p%d-%d|" i j in
  let read_qs =
    [|
      {|count(doc("d")/r/item)|};
      {|count(doc("d")/r/item[@v >= 100])|};
      {|string(doc("d")/r/item[1]/@v)|};
    |]
  in
  let body i () =
    try
      let c = new_client () in
      for j = 1 to per_client do
        if i = 0 then begin
          ignore
            (Client.execute c
               (Printf.sprintf {|UPDATE insert <w>%s</w> into doc("d")/r|}
                  (token i j)));
          Mutex.lock ack_mu;
          acked := token i j :: !acked;
          Mutex.unlock ack_mu
        end
        else ignore (Client.execute c read_qs.(j mod Array.length read_qs))
      done;
      Client.close c
    with e ->
      Mutex.lock ack_mu;
      incr failures;
      Mutex.unlock ack_mu;
      pf "  client %d failed: %s\n" i (Printexc.to_string e)
  in
  let t_wall, () =
    time_once (fun () ->
        let ts = List.init clients (fun i -> Thread.create (body i) ()) in
        List.iter Thread.join ts)
  in
  let epoch1, pos1 = wal_tip () in
  let t_catchup, caught =
    time_once (fun () -> Recv.wait_caught_up ~timeout_s:30. recv ~epoch:epoch1 ~pos:pos1)
  in
  sampling := false;
  Thread.join sampler;
  let p q = Sedna_util.Metrics.percentile lag_h q in
  record "e15.throughput_rps"
    (Sedna_util.Metrics.Float (float_of_int (clients * per_client) /. t_wall));
  record_int "e15.lag_p50_bytes" (int_of_float (p 0.5));
  record_int "e15.lag_p95_bytes" (int_of_float (p 0.95));
  record_ms "e15.catchup_ms" t_catchup;
  row3 "mixed workload + shipping"
    (Printf.sprintf "%d reqs in %.2f s" (clients * per_client) t_wall)
    (Printf.sprintf "%.0f req/s" (float_of_int (clients * per_client) /. t_wall));
  row3 "replication lag"
    (Printf.sprintf "p50 %.0f B" (p 0.5))
    (Printf.sprintf "p95 %.0f B" (p 0.95));
  row3 "final catch-up" (Printf.sprintf "%.1f ms" (ms t_catchup)) "";
  if !failures > 0 || not caught then begin
    pf "  E15 FAILED: %d client failures, caught_up=%b\n" !failures caught;
    exit 1
  end;

  (* ---- standby semantics while the primary is alive ---------------- *)
  let sc = Client.connect ~host:"127.0.0.1" ~port:sport () in
  ignore (Client.open_db sc "main");
  ignore (Client.execute sc "BEGIN READ ONLY");
  let standby_count = Client.execute_string sc {|count(doc("d")/r/w)|} in
  ignore (Client.execute sc "COMMIT");
  let refused =
    match Client.execute sc {|UPDATE insert <x/> into doc("d")/r|} with
    | exception Client.Remote_error ("SE-READ-ONLY", _) -> true
    | _ -> false
  in
  Client.close sc;
  record_int "e15.standby_write_refused" (if refused then 1 else 0);
  row3 "standby reads" (standby_count ^ " writes visible")
    (if refused then "write refused (SE-READ-ONLY)" else "write NOT refused");
  if (not refused) || standby_count <> string_of_int per_client then begin
    pf "  E15 FAILED: standby refused=%b count=%s (want %d)\n" refused
      standby_count per_client;
    exit 1
  end;

  (* ---- hard kill: in-flight writer + surviving reader --------------- *)
  let doomed = new_client () in
  ignore (Client.execute doomed "BEGIN");
  ignore (Client.execute doomed {|UPDATE insert <w>|doomed|</w> into doc("d")/r|});
  let survivor = new_client () in
  ignore (Client.execute survivor {|count(doc("d")/r/item)|});
  Server.kill srv_p;
  Sender.stop sender;
  Sedna_core.Database.crash db;
  let failover_seen =
    match Client.execute doomed "COMMIT" with
    | exception Client.Remote_error ("SE-FAILOVER", _) -> true
    | _ -> false
  in
  let t_promote, promote_msg =
    time_once (fun () ->
        Sedna_replication.Repl_client.promote ~host:"127.0.0.1" ~port:sport
          ~database:"main")
  in
  (* the reader's connection died with the primary: its next read must
     retry transparently against the standby *)
  let reader_after = Client.execute_string survivor {|count(doc("d")/r/item)|} in
  Client.close survivor;
  record_int "e15.writer_se_failover" (if failover_seen then 1 else 0);
  record_ms "e15.promote_ms" t_promote;
  row3 "kill primary mid-txn"
    (if failover_seen then "writer got SE-FAILOVER" else "writer NOT failed")
    (Printf.sprintf "reader failed over, saw %s" reader_after);
  row3 "promotion" (Printf.sprintf "%.1f ms" (ms t_promote)) promote_msg;
  if (not failover_seen) || reader_after <> "200" then begin
    pf "  E15 FAILED: failover_seen=%b reader_after=%s\n" failover_seen
      reader_after;
    exit 1
  end;

  (* ---- the same clients write to the promoted standby --------------- *)
  (* [doomed] already failed over during its SE-FAILOVER; re-running the
     lost transaction there must now succeed *)
  ignore (Client.execute doomed "BEGIN");
  ignore (Client.execute doomed {|UPDATE insert <w>|retry|</w> into doc("d")/r|});
  ignore (Client.execute doomed "COMMIT");
  Client.close doomed;

  (* ---- durability + integrity on both sides ------------------------- *)
  let sdb = Option.get (Recv.database recv) in
  let text =
    let s = Sedna_db.Session.connect sdb in
    Sedna_db.Session.execute_string s {|string(doc("d")/r)|}
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  let lost = List.filter (fun tok -> not (contains text tok)) !acked in
  let s_problems = Sedna_core.Integrity.check_all (Sedna_core.Database.store sdb) in
  let p_problems =
    let pdb = Sedna_core.Database.open_existing (Filename.concat base "primary") in
    let ps = Sedna_core.Integrity.check_all (Sedna_core.Database.store pdb) in
    Sedna_core.Database.close pdb;
    ps
  in
  record_int "e15.acked_commits" (List.length !acked);
  record_int "e15.lost_commits" (List.length lost);
  record_int "e15.integrity_errors"
    (List.length s_problems + List.length p_problems);
  row3 "acked-commit audit"
    (Printf.sprintf "%d acked, %d lost" (List.length !acked) (List.length lost))
    (Printf.sprintf "integrity: standby %s, old primary %s"
       (if s_problems = [] then "OK" else "ERRORS")
       (if p_problems = [] then "OK" else "ERRORS"));
  if lost <> [] || s_problems <> [] || p_problems <> [] || not (contains text "|retry|")
  then begin
    pf "  E15 FAILED: %d acked commits lost, %d+%d integrity errors\n"
      (List.length lost) (List.length s_problems) (List.length p_problems);
    exit 1
  end;
  Server.stop srv_s;
  Recv.stop recv;
  ignore (Sys.command ("rm -rf " ^ Filename.quote base))

(* ------------------------------------------------------------------ *)
(* E17 — group commit: write throughput vs writer concurrency         *)
(* ------------------------------------------------------------------ *)

(* W writer threads, each auto-committing inserts into its own document
   through the governor's engine lock, with group commit on and off at
   equal durability (every ack is behind an fsync covering its commit
   record).  Grouped mode parks commits outside the engine lock so one
   leader fsync acknowledges a batch; ungrouped is the one-fsync-per-
   commit baseline.  Per-writer documents keep the S2PL document lock
   out of the measurement: same-document writers serialize on the lock
   hand-off, which bounds coalescing by contention, not by fsync. *)
let e17 () =
  header "E17 group commit — commit throughput at equal durability"
    "parked commits share one covering WAL fsync: throughput scales \
     with writer concurrency while the fsync rate stays near-flat";
  let module G = Sedna_db.Governor in
  let per_writer = if quick () then 25 else 80 in
  let saved = Sedna_core.Database.group_commit_on () in
  let run_mode ~grouped writers =
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "sedna-bench-gc-%d-%b-%d-%f" (Unix.getpid ()) grouped
           writers (Unix.gettimeofday ()))
    in
    if Sys.file_exists dir then
      ignore (Sys.command ("rm -rf " ^ Filename.quote dir));
    let g = G.create () in
    let db = G.create_database g ~name:"main" ~dir in
    let doc w = Printf.sprintf "log%d" w in
    for w = 0 to writers - 1 do
      G.with_engine g (fun () ->
          ignore
            (Sedna_core.Database.with_txn db (fun txn st ->
                 Sedna_core.Database.lock_exn db txn ~doc:(doc w)
                   ~mode:Sedna_core.Lock_mgr.Exclusive;
                 Sedna_core.Loader.load_string st ~doc_name:(doc w) "<log/>")))
    done;
    Sedna_core.Database.set_group_commit grouped;
    let syncs0 = Sedna_util.Counters.get Sedna_util.Counters.wal_syncs in
    let failures = ref 0 in
    let fail_mu = Mutex.create () in
    let body w () =
      try
        let _, s = G.connect g ~database:"main" in
        (* constant statement text per writer: the plan cache absorbs
           compilation, so the loop measures the commit path *)
        let stmt =
          Printf.sprintf {|UPDATE insert <e/> into doc(%S)/log|} (doc w)
        in
        for _ = 1 to per_writer do
          G.with_engine g (fun () -> ignore (Sedna_db.Session.execute s stmt))
        done
      with e ->
        Mutex.lock fail_mu;
        incr failures;
        Mutex.unlock fail_mu;
        pf "  writer %d failed: %s\n" w (Printexc.to_string e)
    in
    let t_wall, () =
      time_once (fun () ->
          let ts = List.init writers (fun w -> Thread.create (body w) ()) in
          List.iter Thread.join ts)
    in
    let syncs = Sedna_util.Counters.get Sedna_util.Counters.wal_syncs - syncs0 in
    G.shutdown g;
    ignore (Sys.command ("rm -rf " ^ Filename.quote dir));
    if !failures > 0 then begin
      pf "  E17 FAILED: %d writers errored\n" !failures;
      exit 1
    end;
    let commits = writers * per_writer in
    (float_of_int commits /. t_wall, syncs, commits)
  in
  row4 "writers" "off (cps)" "on (cps)" "speedup / syncs";
  List.iter
    (fun writers ->
      let off_cps, off_syncs, commits = run_mode ~grouped:false writers in
      let on_cps, on_syncs, _ = run_mode ~grouped:true writers in
      record (Printf.sprintf "e17.w%d.off_cps" writers)
        (Sedna_util.Metrics.Float off_cps);
      record (Printf.sprintf "e17.w%d.on_cps" writers)
        (Sedna_util.Metrics.Float on_cps);
      record_int (Printf.sprintf "e17.w%d.off_syncs" writers) off_syncs;
      record_int (Printf.sprintf "e17.w%d.on_syncs" writers) on_syncs;
      record_int (Printf.sprintf "e17.w%d.commits" writers) commits;
      row4
        (string_of_int writers)
        (Printf.sprintf "%.0f" off_cps)
        (Printf.sprintf "%.0f" on_cps)
        (Printf.sprintf "%.2fx / %d->%d" (on_cps /. off_cps) off_syncs on_syncs))
    [ 1; 4; 16 ];
  Sedna_core.Database.set_group_commit saved

(* ------------------------------------------------------------------ *)
(* CRASH — crash-recovery matrix (crash-safety hardening)              *)
(* ------------------------------------------------------------------ *)

(* Drives the Crashkit workload once per fault spec and exits nonzero
   on any durability/integrity failure, so CI can gate on it.  With
   SEDNA_FAULT set ("<site>:<policy>[,...]") only those specs run;
   otherwise every registered site is crossed with crash/torn/fail. *)
let crash () =
  header "CRASH  crash-recovery matrix"
    "acked commits survive an injected crash at every fault site; \
     injected I/O failures abort cleanly";
  let dir_prefix =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sedna-crash-%d" (Unix.getpid ()))
  in
  let ops = if quick () then 8 else 24 in
  (* repl.* sites need a live primary/standby pair, not the single-node
     workload: dispatch them to the replication harness *)
  let dispatch spec =
    if String.starts_with ~prefix:"repl." spec then
      Sedna_replication.Repl_crashkit.run_spec ~dir:(dir_prefix ^ "-repl-env") spec
    else Sedna_db.Crashkit.run_spec ~ops ~dir:(dir_prefix ^ "-env") spec
  in
  let outcomes =
    match Sys.getenv_opt Sedna_util.Fault.env_var with
    | Some specs when String.trim specs <> "" ->
      List.map (fun spec -> dispatch (String.trim spec))
        (String.split_on_char ',' specs)
    | _ ->
      Sedna_db.Crashkit.run_matrix ~ops ~dir_prefix ()
      @ Sedna_replication.Repl_crashkit.run_matrix
          ~dir_prefix:(dir_prefix ^ "-repl") ()
  in
  List.iter (fun o -> pf "  %s\n" (Sedna_db.Crashkit.render o)) outcomes;
  let failed = List.filter (fun o -> not (Sedna_db.Crashkit.ok o)) outcomes in
  pf "\n  %d/%d specs passed\n"
    (List.length outcomes - List.length failed)
    (List.length outcomes);
  record_int "crash.specs" (List.length outcomes);
  record_int "crash.failures" (List.length failed);
  if failed <> [] then begin
    pf "  CRASH MATRIX FAILED\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* CHAOS — network chaos drills (robustness hardening)                 *)
(* ------------------------------------------------------------------ *)

(* The Chaoskit matrix: concurrent wire clients under one seeded
   network fault flavor per cell, a mid-run promotion in every cell,
   and a hard exit on any invariant violation so CI can gate on it.
   SEDNA_CHAOS_SEED replays a different (or a failed) schedule;
   SEDNA_NETFAULT restricts the run to the named cells/specs. *)
let chaos () =
  header "CHAOS network chaos drills — fencing and acked-commit safety"
    "concurrent clients under seeded network faults with a mid-run \
     promotion: no acked commit lost, no write acked past the fence";
  let dir_prefix =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sedna-chaos-%d" (Unix.getpid ()))
  in
  let clients, ops = if quick () then (2, 12) else (4, 24) in
  let seed =
    match Sys.getenv_opt "SEDNA_CHAOS_SEED" with
    | Some s -> ( match int_of_string_opt (String.trim s) with Some n -> n | None -> 1)
    | None -> 1
  in
  pf "  seed %d (SEDNA_CHAOS_SEED replays a schedule; %d clients x %d ops)\n\n"
    seed clients ops;
  let cells =
    match Sys.getenv_opt Sedna_util.Netfault.env_var with
    | Some specs when String.trim specs <> "" ->
      List.map String.trim (String.split_on_char ',' specs)
    | _ -> Sedna_replication.Chaoskit.default_cells
  in
  let outcomes =
    Sedna_replication.Chaoskit.run_matrix ~clients ~ops ~seed ~cells ~dir_prefix ()
  in
  List.iter (fun o -> pf "  %s\n" (Sedna_replication.Chaoskit.render o)) outcomes;
  let failed =
    List.filter (fun o -> not (Sedna_replication.Chaoskit.ok o)) outcomes
  in
  pf "\n  %d/%d cells passed\n"
    (List.length outcomes - List.length failed)
    (List.length outcomes);
  record_int "chaos.cells" (List.length outcomes);
  record_int "chaos.failures" (List.length failed);
  record_int "chaos.seed" seed;
  if failed <> [] then begin
    pf "  CHAOS MATRIX FAILED (replay with SEDNA_CHAOS_SEED=%d)\n" seed;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* HEAL — self-healing storage drill                                   *)
(* ------------------------------------------------------------------ *)

(* Phase A: corrupt on-disk pages behind the buffer pool's back while
   an E14-style client mix hammers an unrelated hot document, and let
   the online scrubber repair them — one victim from a committed WAL
   after-image, and one whose after-image a checkpoint already
   truncated away, so only the hot standby can supply it
   (Wire.Page_request).  No client may ever observe the corruption.

   Phase B: injected resource exhaustion (the [enospc] fault action) at
   the watchdog's probe and then at the group-commit fsync itself must
   flip the node into SE-DEGRADED write-shedding mode — honest
   refusals, never a false ack, reads keep working — and the watchdog's
   hysteresis must recover it without a restart. *)
let heal () =
  header "HEAL self-healing storage drill"
    "the scrubber repairs corrupt pages online (WAL after-image and \
     standby fetch) under client load; injected ENOSPC degrades the \
     node to read-only and it recovers by itself";
  let module G = Sedna_db.Governor in
  let module Server = Sedna_server.Server in
  let module Client = Sedna_server.Server_client in
  let module D = Sedna_core.Database in
  let module C = Sedna_util.Counters in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sedna-heal-%d" (Unix.getpid ()))
  in
  ignore (Sys.command ("rm -rf " ^ Filename.quote dir));
  Unix.mkdir dir 0o755;
  Sedna_util.Fault.disarm_all ();
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  (* small pool: the victims must be evicted (absent) when corrupted,
     so their repair cannot come from a resident frame *)
  let db = D.create ~buffer_frames:16 (Filename.concat dir "primary") in
  let gov_p = G.create () and gov_s = G.create () in
  G.register_database gov_p ~name:"db" db;
  let s0 = Sedna_db.Session.connect db in
  let run q = ignore (Sedna_db.Session.execute s0 q) in
  List.iter
    (fun (name, root) ->
      ignore
        (D.with_txn db (fun txn st ->
             D.lock_exn db txn ~doc:name ~mode:Sedna_core.Lock_mgr.Exclusive;
             Sedna_core.Loader.load_string st ~doc_name:name root)))
    [ ("cold", "<cold/>"); ("warm", "<warm/>"); ("hot", "<hot/>") ];
  let pad = String.make 1000 'x' in
  let cold_n = if quick () then 60 else 120 in
  (* warm stays at 40 even in quick mode: it must overflow the 16-frame
     pool so at least one warm page is evicted (absent) while its
     after-image is still in the WAL — that page is the WAL-repair
     victim *)
  let warm_n = 40 in
  for i = 1 to cold_n do
    run
      (Printf.sprintf {|UPDATE insert <e i="%d">%s</e> into doc("cold")/cold|}
         i pad)
  done;
  (* flush everything and truncate the WAL: the cold pages now have no
     after-image left — only the standby can repair them *)
  D.checkpoint db;
  for i = 1 to warm_n do
    run
      (Printf.sprintf {|UPDATE insert <e i="%d">%s</e> into doc("warm")/warm|}
         i pad)
  done;
  (* ---- replication pair; the standby also serves page fetches ------ *)
  let sender = Sedna_replication.Repl_sender.start ~gov:gov_p db in
  let recv =
    Sedna_replication.Repl_receiver.start ~poll_s:0.005 ~gov:gov_s ~name:"db"
      ~dir:(Filename.concat dir "standby") ~host:"127.0.0.1"
      ~port:(Sedna_replication.Repl_sender.port sender) ()
  in
  let epoch0 = Sedna_core.Wal.epoch (D.wal db)
  and pos0 = Sedna_core.Wal.size (D.wal db) in
  if
    not
      (Sedna_replication.Repl_receiver.wait_caught_up recv ~epoch:epoch0
         ~pos:pos0)
  then fail "standby never caught up";
  let page_srv =
    Sedna_replication.Repl_sender.start_source ~gov:gov_s (fun () ->
        Sedna_replication.Repl_receiver.database recv)
  in
  (* ---- pick the victims -------------------------------------------- *)
  (* warm the hot document first so every page the client mix can touch
     is resident — victims are then guaranteed to be cold/warm data
     pages no client query will fault in before the scrubber heals them *)
  run {|count(doc("hot")/hot)|};
  let fs = Sedna_core.Buffer_mgr.store (D.buffer db) in
  let wal_pids =
    let tbl = Hashtbl.create 32 and committed = Hashtbl.create 32 in
    let records =
      Sedna_core.Wal.read_all (Filename.concat (D.directory db) "wal.sdb")
    in
    List.iter
      (function
        | Sedna_core.Wal.Commit (t, _) -> Hashtbl.replace committed t true
        | Sedna_core.Wal.Abort t -> Hashtbl.remove committed t
        | _ -> ())
      records;
    List.iter
      (function
        | Sedna_core.Wal.Image (t, pid, _) when Hashtbl.mem committed t ->
          Hashtbl.replace tbl pid true
        | _ -> ())
      records;
    tbl
  in
  let npages = Sedna_core.File_store.page_count fs in
  let victim_wal, victim_sb =
    G.with_engine gov_p (fun () ->
        let pick p =
          let rec go pid =
            if pid >= npages then None
            else if
              Sedna_core.Buffer_mgr.residency (D.buffer db) pid = `Absent
              && p pid
            then Some pid
            else go (pid + 1)
          in
          go 0
        in
        ( pick (fun pid -> Hashtbl.mem wal_pids pid),
          pick (fun pid -> not (Hashtbl.mem wal_pids pid)) ))
  in
  let flip pid =
    let fd = Unix.openfile (Sedna_core.File_store.path fs) [ Unix.O_RDWR ] 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let off = (pid * Sedna_core.Page.page_size) + 256 in
        ignore (Unix.lseek fd off Unix.SEEK_SET);
        let b = Bytes.create 1 in
        ignore (Unix.read fd b 0 1);
        Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
        ignore (Unix.lseek fd off Unix.SEEK_SET);
        ignore (Unix.write fd b 0 1))
  in
  let wal0 = C.get C.scrub_repaired_wal
  and sb0 = C.get C.scrub_repaired_standby in
  (match (victim_wal, victim_sb) with
   | Some a, Some b ->
     pf "  victims: page %d (WAL repair), page %d (standby repair); %d pages total\n"
       a b npages;
     flip a;
     flip b
   | _ ->
     fail "no victim pages found (wal=%b standby=%b)" (victim_wal <> None)
       (victim_sb <> None));
  (* ---- scrub under client load ------------------------------------- *)
  let scrubber =
    Sedna_core.Scrubber.create ~pages_per_sec:2000
      ~fetch:
        (Sedna_replication.Repl_client.page_fetcher ~host:"127.0.0.1"
           ~port:(Sedna_replication.Repl_sender.port page_srv)
           db)
      ~lock:(fun f -> G.with_engine gov_p f)
      db
  in
  Sedna_core.Scrubber.start scrubber;
  let clients = 4 in
  let per_client = if quick () then 20 else 40 in
  let srv =
    Server.start
      ~config:{ Server.default_config with pool_size = clients + 2 }
      gov_p
  in
  let port = Server.port srv in
  let client_failures = ref 0 in
  let mu = Mutex.create () in
  let noted e i j =
    Mutex.lock mu;
    incr client_failures;
    Mutex.unlock mu;
    pf "  client %d op %d failed: %s\n" i j (Printexc.to_string e)
  in
  let body i () =
    try
      let c = Client.connect ~port () in
      ignore (Client.open_db c "db");
      for j = 1 to per_client do
        try
          if i = 0 then
            ignore
              (Client.execute c
                 (Printf.sprintf
                    {|UPDATE insert <w c="a%d"/> into doc("hot")/hot|} j))
          else ignore (Client.execute c {|count(doc("hot")/hot/w)|})
        with e -> noted e i j
      done;
      Client.close c
    with e -> noted e i 0
  in
  let ts = List.init clients (fun i -> Thread.create (body i) ()) in
  List.iter Thread.join ts;
  let repaired () =
    C.get C.scrub_repaired_wal > wal0 && C.get C.scrub_repaired_standby > sb0
  in
  let deadline = Unix.gettimeofday () +. 15. in
  while (not (repaired ())) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.05
  done;
  Sedna_core.Scrubber.stop scrubber;
  if not (repaired ()) then
    fail "scrubber never repaired both victims (wal %d->%d, standby %d->%d)"
      wal0
      (C.get C.scrub_repaired_wal)
      sb0
      (C.get C.scrub_repaired_standby);
  List.iter
    (function
      | Some pid ->
        if
          G.with_engine gov_p (fun () ->
              Sedna_core.File_store.verify_page fs pid)
          = `Corrupt
        then fail "page %d still corrupt after scrub" pid
      | None -> ())
    [ victim_wal; victim_sb ];
  (* full scans fault every repaired page back in: they must be readable *)
  let cold_seen = Sedna_db.Session.execute_string s0 {|count(doc("cold")/cold/e)|} in
  let warm_seen = Sedna_db.Session.execute_string s0 {|count(doc("warm")/warm/e)|} in
  if cold_seen <> string_of_int cold_n then
    fail "cold scan after repair: %s entries, want %d" cold_seen cold_n;
  if warm_seen <> string_of_int warm_n then
    fail "warm scan after repair: %s entries, want %d" warm_seen warm_n;
  record_int "heal.repaired_wal" (C.get C.scrub_repaired_wal - wal0);
  record_int "heal.repaired_standby" (C.get C.scrub_repaired_standby - sb0);
  record_int "heal.client_failures" !client_failures;
  row3 "scrub repair under load"
    (Printf.sprintf "%d via WAL, %d via standby"
       (C.get C.scrub_repaired_wal - wal0)
       (C.get C.scrub_repaired_standby - sb0))
    (Printf.sprintf "%d client ops, %d failures" (clients * per_client)
       !client_failures);
  (* ---- phase B: resource exhaustion -> degraded mode ---------------- *)
  let wd =
    Sedna_core.Watchdog.start ~interval_s:0.05 ~recover_after:2
      ~dir:(Filename.concat dir "primary")
      ~get_db:(fun () -> Some db)
      ()
  in
  let wait_for what cond =
    let d = Unix.gettimeofday () +. 5. in
    while (not (cond ())) && Unix.gettimeofday () < d do
      Unix.sleepf 0.01
    done;
    if not (cond ()) then fail "timeout waiting for %s" what
  in
  let c = Client.connect ~port () in
  ignore (Client.open_db c "db");
  (* disk full at the probe: degraded; writes shed, reads keep working *)
  Sedna_util.Fault.arm_spec "store.enospc:enospc@1";
  wait_for "degraded mode (probe ENOSPC)" (fun () -> D.is_degraded db);
  (match
     Client.execute c {|UPDATE insert <w c="b0"/> into doc("hot")/hot|}
   with
   | _ -> fail "write acked while degraded"
   | exception Client.Remote_error ("SE-DEGRADED", _) -> ()
   | exception e ->
     fail "degraded write: wanted SE-DEGRADED, got %s" (Printexc.to_string e));
  (match Client.execute c {|count(doc("hot")/hot/w)|} with
   | _ -> ()
   | exception e ->
     fail "read while degraded failed: %s" (Printexc.to_string e));
  wait_for "auto-recovery" (fun () -> not (D.is_degraded db));
  (match
     Client.execute c {|UPDATE insert <w c="b1"/> into doc("hot")/hot|}
   with
   | _ -> ()
   | exception e ->
     fail "write after recovery failed: %s" (Printexc.to_string e));
  (* disk full at the group-commit fsync itself: the parked commit must
     fail — never a false ack — and the node degrade again *)
  Sedna_util.Fault.arm_spec "wal.group_sync:enospc@1";
  (match
     Client.execute c {|UPDATE insert <w c="b2"/> into doc("hot")/hot|}
   with
   | _ -> fail "commit acked across a failed group fsync"
   | exception Client.Remote_error ("SE-DEGRADED", _) -> ()
   | exception e ->
     fail "fsync ENOSPC: wanted SE-DEGRADED, got %s" (Printexc.to_string e));
  wait_for "second auto-recovery" (fun () -> not (D.is_degraded db));
  (match
     Client.execute c {|UPDATE insert <w c="b3"/> into doc("hot")/hot|}
   with
   | _ -> ()
   | exception e ->
     fail "write after second recovery failed: %s" (Printexc.to_string e));
  (* every acked write present, the refused one absent (no false ack) *)
  let b2 = Client.execute_string c {|count(doc("hot")/hot/w[@c="b2"])|} in
  let total = Client.execute_string c {|count(doc("hot")/hot/w)|} in
  if b2 <> "0" then fail "unacked b2 write is visible (false ack)";
  if total <> string_of_int (per_client + 2) then
    fail "hot writes after drill: %s present, want %d" total (per_client + 2);
  Client.close c;
  record_int "heal.degraded_entered" (C.get C.degraded_entered);
  record_int "heal.degraded_recovered" (C.get C.degraded_recovered);
  record_int "heal.rejected_writes" (C.get C.degraded_rejected_writes);
  row3 "degraded mode"
    (Printf.sprintf "%d episodes, %d writes shed"
       (C.get C.degraded_entered)
       (C.get C.degraded_rejected_writes))
    "reads served throughout, auto-recovered twice";
  (* ---- teardown ----------------------------------------------------- *)
  Sedna_util.Fault.disarm_all ();
  Sedna_core.Watchdog.stop wd;
  Server.stop ~shutdown_governor:false srv;
  Sedna_replication.Repl_receiver.stop recv;
  Sedna_replication.Repl_sender.stop page_srv;
  Sedna_replication.Repl_sender.stop sender;
  (try G.shutdown gov_s with _ -> ());
  (try G.shutdown gov_p with _ -> ());
  ignore (Sys.command ("rm -rf " ^ Filename.quote dir));
  record_int "heal.failures" (List.length !failures + !client_failures);
  if !failures <> [] || !client_failures > 0 then begin
    List.iter (fun m -> pf "  - %s\n" m) (List.rev !failures);
    pf "  HEAL DRILL FAILED\n";
    exit 1
  end;
  pf "\n  HEAL drill passed: both repair paths exercised, zero failed queries,\n";
  pf "  ENOSPC shed writes honestly and recovered without a restart\n"

(* ------------------------------------------------------------------ *)
(* TRACE — observability: span instrumentation overhead                *)
(* ------------------------------------------------------------------ *)

(* The same statement mix timed with request tracing enabled and
   disabled.  Disabled must be free (one option check per site);
   enabled budgets a few percent — the spans only materialize at
   phase boundaries, never inside the evaluation loops. *)
let trace_overhead () =
  header "TRACE observability — span instrumentation overhead"
    "request-scoped tracing costs a few percent while enabled and one \
     option check per instrumented site while disabled";
  let module Span = Sedna_util.Span in
  let db = fresh_db () in
  let s = session db in
  ignore (exec s {|CREATE DOCUMENT "d"|});
  ignore
    (exec s
       ("UPDATE insert <r>"
        ^ String.concat ""
            (List.init 200 (fun i -> Printf.sprintf "<item v=\"%d\"/>" i))
        ^ {|</r> into doc("d")|}));
  let iters = if quick () then 50 else 500 in
  let workload () =
    for _ = 1 to iters do
      ignore (exec s {|count(doc("d")/r/item[@v >= 100])|});
      ignore (exec s {|string(doc("d")/r/item[1]/@v)|})
    done
  in
  workload ();
  (* warm plan cache + buffers *)
  let was = Span.is_enabled () in
  Span.set_enabled false;
  let t_off = time_median ~runs:5 workload in
  Span.set_enabled true;
  let t_on = time_median ~runs:5 workload in
  Span.set_enabled was;
  let stmts = float_of_int (2 * iters) in
  let overhead = 100. *. (t_on -. t_off) /. t_off in
  record_ms "trace.off_ms" t_off;
  record_ms "trace.on_ms" t_on;
  record "trace.overhead_pct" (Sedna_util.Metrics.Float overhead);
  row3 "tracing disabled"
    (Printf.sprintf "%.2f ms" (ms t_off))
    (Printf.sprintf "%.0f stmt/s" (stmts /. t_off));
  row3 "tracing enabled"
    (Printf.sprintf "%.2f ms" (ms t_on))
    (Printf.sprintf "%.0f stmt/s" (stmts /. t_on));
  row3 "overhead" (Printf.sprintf "%+.1f%%" overhead) "";
  Sedna_core.Database.close db

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E4b", e4b);
    ("E5", e5); ("E6", e6); ("E6b", e6b); ("E7", e7); ("E7b", e7b); ("E8", e8);
    ("E9", e9); ("E10", e10); ("E11", e11); ("E12", e12); ("E13", e13);
    ("E14", e14); ("E15", e15); ("E17", e17); ("CRASH", crash); ("CHAOS", chaos);
    ("HEAL", heal); ("TRACE", trace_overhead);
  ]

let () =
  (* SEDNA_SLOW_MS / SEDNA_SLOW_LOG: CI keeps the slow-statement log of
     the bench smoke as an artifact *)
  Sedna_util.Slow_log.init_from_env ();
  let wanted =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  pf "Sedna reproduction benchmarks (see DESIGN.md section 5, EXPERIMENTS.md)\n";
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None -> pf "unknown experiment %s\n" name)
    wanted;
  let c = Sedna_util.Counters.get in
  let hits = c Sedna_util.Counters.buffer_hit
  and faults = c Sedna_util.Counters.buffer_fault in
  pf "\nall experiments done\n";
  pf "buffer pool totals: %d hits, %d faults (%.1f%% hit rate); %d pages read, %d written\n"
    hits faults
    (if hits + faults = 0 then 0.0
     else 100.0 *. float_of_int hits /. float_of_int (hits + faults))
    (c Sedna_util.Counters.page_reads)
    (c Sedna_util.Counters.page_writes);
  write_metrics_json ()
